package vault

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clickpass/internal/par"
	"clickpass/internal/passpoints"
)

// SyncPolicy selects when the durable store fsyncs a shard's log after
// appending a mutation. It is the knob that trades acked-write
// durability against write latency; see the package's PERFORMANCE.md
// "Durable vault" table for measured costs.
type SyncPolicy int

// Sync policies, strongest first.
const (
	// SyncAlways fsyncs after every append: an acked mutation survives
	// both a process kill and an OS crash. Concurrent appends to the
	// same shard coalesce into shared group-commit fsyncs, so the
	// per-mutation cost amortizes across writers. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs dirty shards on a background timer
	// (DurableOptions.SyncEvery). An acked mutation survives a process
	// kill immediately (the write() has happened) but may be lost to an
	// OS crash inside the sync window.
	SyncInterval
	// SyncNever leaves syncing to the OS page cache (and Close). Acked
	// mutations survive a process kill but not an OS crash.
	SyncNever
)

// String returns the policy's flag spelling ("always", "interval",
// "never").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag spellings accepted by
// pwserver: "always", "interval", "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("vault: unknown sync policy %q (want always, interval or never)", s)
	}
}

// DefaultCompactRatio is the garbage-to-live threshold at which a
// shard's log is rewritten: compaction triggers when a log holds more
// than ratio× as many dead records (overwritten, deleted, stale
// lockout counters) as live entries.
const DefaultCompactRatio = 2.0

// compactMinEntries is the floor below which a shard log is never
// compacted — rewriting a hundred-record file buys nothing and the
// ratio test is noisy at small counts.
const compactMinEntries = 256

// DefaultCheckpointMin is the minimum number of records appended
// since a shard's last checkpoint (or compaction) before the periodic
// checkpointer bothers snapshotting it again; selected when
// DurableOptions.CheckpointMin <= 0.
const DefaultCheckpointMin = 256

// ErrShardFailed marks mutations refused by a fail-stopped shard. A
// shard fail-stops when an fsync of its log fails, or when the
// rollback after a failed append cannot restore the committed offset:
// after a failed fsync the kernel may drop the dirty pages AND clear
// the error state, so a later fsync can report success over lost
// writes (the "fsyncgate" pattern) — no subsequent fsync result can
// prove an append's durability. The shard keeps serving reads (its
// acked state is intact in memory) but refuses every further mutation
// until the process restarts and replays the log.
var ErrShardFailed = errors.New("vault: shard fail-stopped after a log write or sync error")

// DurableOptions configures OpenDurable. The zero value selects
// DefaultShards, SyncAlways, and DefaultCompactRatio with the
// background compactor enabled and periodic checkpoints disabled.
type DurableOptions struct {
	// Shards is the log/lock partition count; <= 0 selects
	// DefaultShards. The count is fixed when the directory is created
	// and recorded in its meta.json: a record's log is chosen by
	// hash(user) mod Shards, so changing the modulus under an existing
	// directory would strand records in the wrong logs. Reopening with
	// a different value silently keeps the on-disk count (check
	// Shards() for the effective value); to re-partition, SaveTo a
	// JSON snapshot and ImportJSON it into a fresh directory.
	Shards int
	// Sync is the fsync policy for appended mutations.
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval;
	// <= 0 selects 100ms. Ignored under other policies.
	SyncEvery time.Duration
	// CompactRatio overrides DefaultCompactRatio; <= 0 selects the
	// default.
	CompactRatio float64
	// NoAutoCompact disables the background compactor; Compact and
	// CompactShard remain available for manual use (tests, tooling).
	NoAutoCompact bool
	// CheckpointEvery is the period of the background checkpointer:
	// every tick it snapshots each shard with at least CheckpointMin
	// new records into a canonical per-shard checkpoint file and
	// truncates the log to the post-snapshot tail, so startup replay
	// is O(delta since checkpoint) instead of O(total history).
	// <= 0 disables background checkpoints; Checkpoint and
	// CheckpointShard remain available for manual use.
	CheckpointEvery time.Duration
	// CheckpointMin is the minimum number of records appended since a
	// shard's last checkpoint before the periodic checkpointer
	// re-snapshots it; <= 0 selects DefaultCheckpointMin. Ignored by
	// explicit CheckpointShard calls, which snapshot any non-empty
	// delta.
	CheckpointMin int
	// CheckpointMinBytes, when > 0, additionally triggers the periodic
	// checkpointer once a shard has appended at least this many log
	// bytes since its last checkpoint, even if the record count is
	// still below CheckpointMin — so a workload of few, large records
	// cannot defer rotation (and therefore replay cost) indefinitely.
	// 0 keeps the record-count schedule alone.
	CheckpointMinBytes int64
	// CommitWindow, when > 0 under SyncAlways, makes each group-commit
	// batch leader wait this long before flushing, so writers arriving
	// inside the window join the batch instead of forming the next one
	// — deeper batches (fewer fsyncs per mutation) at moderate load,
	// bought with up to CommitWindow of added ack latency per write.
	// 0 (the default) flushes immediately: the batch is whatever
	// queued during the previous fsync, exactly the pre-window
	// behavior.
	CommitWindow time.Duration
}

// Durable is the crash-safe Store: the fnv-sharded in-memory map of
// Sharded, with one append-only log file per shard as the source of
// truth. Every mutation — Put, Replace, Delete, and lockout-counter
// writes through the LockoutStore extension — appends one
// length-prefixed, CRC32-checksummed record to its shard's log before
// the call returns, so an acked write survives a crash (exactly how
// durably is the SyncPolicy's call). OpenDurable replays the shard
// logs in parallel (they share nothing) to rebuild memory, truncating
// each log at the first torn or corrupt record: everything acked
// before the tear is recovered, the torn tail is dropped.
//
// Under SyncAlways, concurrent appends to one shard group-commit:
// each writer stages its encoded record under the shard lock, then
// the writers coalesce into batches — one leader writes and fsyncs
// the whole staged buffer — so N concurrent mutations cost one write
// and one fsync, not N of each. Every waiter acks only if the shared
// fsync succeeded, and a failed fsync fails (and rolls back) the
// whole batch. A failed fsync also fail-stops the shard (see
// ErrShardFailed): durability claims after a kernel writeback error
// are unverifiable, so the shard refuses further mutations rather
// than ack them.
//
// Note one visibility caveat of group commit: a mutation becomes
// readable (Get/Users/Snapshot) the moment its record is written,
// microseconds before the shared fsync that acks it. If that fsync
// fails, the batch's map updates are rolled back and the shard
// fail-stops — a reader can briefly observe a mutation that is then
// refused, but never one that silently survives un-acked.
//
// Logs only grow, so a background compactor (or an explicit Compact)
// rewrites a shard's log from its live map once dead records outgrow
// CompactRatio× the live set, and a background checkpointer (or an
// explicit Checkpoint) snapshots each shard's state into a canonical
// checkpoint file and truncates the log to the tail appended since —
// bounding startup replay by the checkpoint cadence instead of the
// store's age. SaveTo still exports the canonical JSON snapshot
// shared by Vault and Sharded, and ImportJSON loads one, so a
// deployment can migrate between backends in either direction.
type Durable struct {
	dir    string
	opts   DurableOptions
	shards []walShard
	closed atomic.Bool

	// openFile opens a shard log; tests swap it to inject failing
	// files (see walFile).
	openFile func(path string) (walFile, error)
	// testCrashAfterCkptRename, when non-nil, runs between a
	// checkpoint file's rename and the log rotation that follows —
	// the crash window recovery must tolerate. Tests use it to copy
	// the directory mid-protocol.
	testCrashAfterCkptRename func(shard int)
	// testCrashAfterCompactRename runs between a compacted log's
	// rename and the removal of the now-stale checkpoint file.
	testCrashAfterCompactRename func(shard int)

	kick chan int      // compactor nudge, carries a shard index
	stop chan struct{} // closes to stop background goroutines
	bg   sync.WaitGroup

	// metaMu serializes meta.json rewrites (epoch bumps); epoch caches
	// the persisted value for lock-free reads.
	metaMu sync.Mutex
	epoch  atomic.Uint64
	// replWait, when set, blocks a mutation's ack until the configured
	// replica acknowledgement covers (shard, seq) — the quorum hook
	// installed by SetReplHooks. Called without any shard lock held;
	// its error fails the writer but never the shard (the record is
	// locally durable, see ReplHooks).
	replWait atomic.Pointer[func(shard int, seq uint64) error]
	// kvWatch, when set, observes side-table keys changed by the
	// REPLICATED apply paths (ApplyReplFrames, InstallShardSnapshot) —
	// how a follower's soft state (the session key set) learns of
	// primary writes without polling. Local SetKV calls do not fire it:
	// the local writer already knows the value, and firing under the
	// writer's own locks would invite deadlock. Fired after all shard
	// locks are released. See SetKVWatch.
	kvWatch atomic.Pointer[func(key string, val []byte)]
}

// walFile is the slice of *os.File the shard log code uses, split out
// as an interface so tests can inject files whose writes, syncs,
// truncates, or seeks fail on demand (the rollback and fsyncgate
// regression tests). Production code always uses *os.File.
type walFile interface {
	io.Reader
	io.Writer
	io.Seeker
	io.ReaderAt
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Close releases the file.
	Close() error
	// Name returns the file's path for error messages.
	Name() string
}

// defaultOpenFile opens a real log file read-write, creating it if
// missing.
func defaultOpenFile(path string) (walFile, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
}

// walPending is one record written to a shard's log but not yet
// covered by a successful fsync: the bookkeeping group commit needs
// to ack (drop the undo) or fail (run it) a whole batch at once.
type walPending struct {
	end  int64  // log length once this record was written
	undo func() // reverts the record's eager map application
}

// walShard is one log-backed partition. The mutex covers the maps,
// the file, and all offsets; the commit condvar (sharing the mutex)
// coordinates group commit: under SyncAlways writers stage their
// encoded records in wbuf under the lock, then wait on the condvar
// while one of them — the batch leader — writes and fsyncs the whole
// buffer outside the lock and wakes everyone with the shared result.
// Staging in memory rather than writing through matters beyond the
// saved syscalls: an fsync racing concurrent appends to the same
// inode degrades badly on journaling filesystems (the flush chases
// freshly dirtied pages), so exactly one goroutine — the leader —
// ever touches the file while a sync is possible.
type walShard struct {
	mu       sync.Mutex
	commit   sync.Cond // group-commit wakeups; commit.L == &mu
	records  map[string]*passpoints.Record
	lockouts map[string]int
	// kv holds the shard's slice of the small durable key/value side
	// table (see KVStore): opaque blobs keyed by FNV32a(key) exactly
	// like records, logged, checkpointed, compacted, and replicated by
	// the same machinery. Session signing keys and revocation
	// watermarks live here.
	kv       map[string][]byte
	f        walFile
	path     string
	ckptPath string
	// Three log lengths, always off <= wsize <= lsize:
	// off is the committed length — every byte below it belongs to an
	// acked record (and, under SyncAlways, has been fsynced); wsize
	// is the length written to the file; lsize is the logical length
	// including records still staged in wbuf. Outside an in-flight
	// group commit all three are equal.
	off   int64
	wsize int64
	lsize int64
	wbuf  []byte // staged frames awaiting the next batch flush
	// entries counts records in the log since its last rewrite;
	// sinceCkpt counts records appended since the last checkpoint or
	// compaction (the replay debt a new checkpoint would clear).
	entries   int
	sinceCkpt int
	dirty     bool   // has unsynced appends (SyncInterval bookkeeping)
	dirtyGen  uint64 // bumped per unsynced append, so a sync landing
	// mid-append cannot clear dirty for bytes it did not cover
	logID   uint64 // checkpoint marker id of this log generation; 0 = virgin
	syncing bool   // a group-commit leader's fsync is in flight
	pending []walPending
	failed  error // sticky fail-stop cause; non-nil refuses mutations
	buf     []byte
	// ckptBytes counts log bytes appended since the last checkpoint or
	// compaction — the byte-denominated twin of sinceCkpt, feeding the
	// CheckpointMinBytes schedule.
	ckptBytes int64
	// seq numbers this shard's mutations within the current process
	// lifetime (markers excluded); it is never persisted. Replication
	// identifies stream positions by (runID, shard, seq) — see
	// ReplHooks. Gaps are legal (a failed batch consumes seqs that are
	// never shipped); the invariant is monotonicity.
	seq uint64
	// ship, when non-nil, receives every committed frame batch in log
	// order (see ReplHooks.Commit). Called with sh.mu held; it must
	// only copy the bytes out, never call back into the store.
	ship func(frames []byte, lastSeq uint64)
	// commitWindow is DurableOptions.CommitWindow, copied here so
	// awaitCommit — a shard method — can read it without reaching back
	// into the store.
	commitWindow time.Duration
}

// Durable implements Store and the LockoutStore extension.
var (
	_ Store        = (*Durable)(nil)
	_ LockoutStore = (*Durable)(nil)
)

// walEntry is the JSON payload of one log record. Op distinguishes
// the mutation classes; exactly one of Rec / Failures / Ckpt carries
// the data.
type walEntry struct {
	// Op is "put" (store or overwrite Rec), "del" (remove User),
	// "lock" (set User's failed-attempt counter to Failures; 0
	// clears), "kv" (set Key's side-table blob to Val; empty Val
	// deletes), or "ckpt" (a marker record identifying the log
	// generation — see walckpt.go; never a mutation).
	Op       string             `json:"op"`
	User     string             `json:"user"`
	Rec      *passpoints.Record `json:"rec,omitempty"`
	Failures int                `json:"failures,omitempty"`
	// Key and Val carry a "kv" side-table write (see KVStore); an
	// empty Val deletes Key.
	Key string `json:"key,omitempty"`
	Val []byte `json:"val,omitempty"`
	// Ckpt is the nonzero generation id of a "ckpt" marker record.
	Ckpt uint64 `json:"ckpt,omitempty"`
	// Full marks a "ckpt" marker written by compaction: the log after
	// the marker is the complete state, no checkpoint file needed.
	Full bool `json:"full,omitempty"`
}

const (
	walOpPut  = "put"
	walOpDel  = "del"
	walOpLock = "lock"
	walOpKV   = "kv"
	walOpCkpt = "ckpt"
)

// walHeaderSize is the fixed per-record framing: a little-endian
// uint32 payload length followed by the IEEE CRC32 of the payload.
const walHeaderSize = 8

// walMaxRecord bounds a decoded record length. A corrupt length field
// must not make replay allocate gigabytes; no legitimate entry (one
// user record) approaches this.
const walMaxRecord = 1 << 26

// shardLogName returns the log file name for shard i.
func shardLogName(i int) string { return fmt.Sprintf("shard-%04d.wal", i) }

// OpenDurable opens (creating if needed) the append-log store rooted
// at directory dir and replays every shard into memory — its
// checkpoint (if one exists) plus the log tail appended since, one
// goroutine per shard (the shards share nothing, so recovery scales
// with cores). A log whose tail is torn — a partially written record
// from a crash — is truncated at the tear, recovering every fully
// appended record and dropping only the unacked tail. Close flushes
// and releases the logs; an unclosed store's logs are still
// consistent (that is the point), but Close is how a clean shutdown
// syncs SyncNever data.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) {
	return openDurable(dir, opts, defaultOpenFile)
}

// openDurable is OpenDurable with an injectable file opener (tests).
func openDurable(dir string, opts DurableOptions, openFile func(string) (walFile, error)) (*Durable, error) {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.CompactRatio <= 0 {
		opts.CompactRatio = DefaultCompactRatio
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if opts.CheckpointMin <= 0 {
		opts.CheckpointMin = DefaultCheckpointMin
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vault: creating %s: %w", dir, err)
	}
	meta, err := loadOrInitMeta(dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = meta.Shards
	// A crash between CreateTemp and Rename (compaction, checkpoint,
	// rotation, meta write) strands a temp file; clean them up here or
	// repeated crashes leak shard-sized dead files forever. Safe:
	// temps are only live inside a call holding the shard lock, and no
	// other store instance may share the directory.
	for _, pat := range []string{".compact-*", ".meta-*", ".ckpt-*", ".rotate-*"} {
		if stale, _ := filepath.Glob(filepath.Join(dir, pat)); len(stale) > 0 {
			for _, f := range stale {
				_ = os.Remove(f)
			}
		}
	}
	d := &Durable{
		dir:      dir,
		opts:     opts,
		shards:   make([]walShard, opts.Shards),
		openFile: openFile,
		kick:     make(chan int, opts.Shards),
		stop:     make(chan struct{}),
	}
	d.epoch.Store(meta.Epoch)
	// Replay one goroutine per shard: the maps, files, and offsets are
	// all shard-private, so recovery time is the slowest shard, not
	// the sum (par returns the lowest-index failure, and every claimed
	// shard runs to completion, so closeFiles sees a consistent set).
	if err := par.ForEach(0, len(d.shards), func(i int) error {
		sh := &d.shards[i]
		sh.commit.L = &sh.mu
		sh.records = make(map[string]*passpoints.Record)
		sh.lockouts = make(map[string]int)
		sh.kv = make(map[string][]byte)
		sh.commitWindow = opts.CommitWindow
		sh.path = filepath.Join(dir, shardLogName(i))
		sh.ckptPath = filepath.Join(dir, shardCkptName(i))
		return sh.open(openFile)
	}); err != nil {
		d.closeFiles()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		d.closeFiles()
		return nil, err
	}
	if !opts.NoAutoCompact {
		d.bg.Add(1)
		go d.compactLoop()
	}
	if opts.Sync == SyncInterval {
		d.bg.Add(1)
		go d.syncLoop()
	}
	if opts.CheckpointEvery > 0 {
		d.bg.Add(1)
		go d.checkpointLoop()
	}
	return d, nil
}

// open loads the shard's checkpoint (when one exists and matches the
// log generation), replays the log tail (truncating a torn tail), and
// leaves the file open for appends. See walckpt.go for the
// checkpoint/marker matching rules.
func (sh *walShard) open(openFile func(string) (walFile, error)) error {
	f, err := openFile(sh.path)
	if err != nil {
		return fmt.Errorf("vault: opening %s: %w", sh.path, err)
	}
	sh.f = f
	if err := sh.recover(); err != nil {
		f.Close()
		sh.f = nil
		return err
	}
	return nil
}

// apply folds one decoded entry into the shard's maps. Replay-time
// and (eagerly, with applyUndo) mutation-time both route through the
// same switch so live and replayed semantics cannot drift.
func (sh *walShard) apply(e *walEntry) {
	switch e.Op {
	case walOpPut:
		if e.Rec != nil && e.Rec.User != "" {
			sh.records[e.Rec.User] = e.Rec
		}
	case walOpDel:
		delete(sh.records, e.User)
	case walOpLock:
		if e.Failures > 0 {
			sh.lockouts[e.User] = e.Failures
		} else {
			delete(sh.lockouts, e.User)
		}
	case walOpKV:
		if e.Key != "" {
			if len(e.Val) > 0 {
				sh.kv[e.Key] = e.Val
			} else {
				delete(sh.kv, e.Key)
			}
		}
	case walOpCkpt:
		// generation marker, not a mutation
	}
}

// applyUndo applies e to the maps like apply and returns a closure
// that restores the touched key's prior state — the rollback a group
// commit batch runs when its shared fsync fails.
func (sh *walShard) applyUndo(e *walEntry) func() {
	switch e.Op {
	case walOpPut:
		user := e.Rec.User
		prev, had := sh.records[user]
		sh.records[user] = e.Rec
		return func() {
			if had {
				sh.records[user] = prev
			} else {
				delete(sh.records, user)
			}
		}
	case walOpDel:
		prev, had := sh.records[e.User]
		delete(sh.records, e.User)
		return func() {
			if had {
				sh.records[e.User] = prev
			}
		}
	case walOpLock:
		prev, had := sh.lockouts[e.User]
		sh.apply(e)
		return func() {
			if had {
				sh.lockouts[e.User] = prev
			} else {
				delete(sh.lockouts, e.User)
			}
		}
	case walOpKV:
		prev, had := sh.kv[e.Key]
		sh.apply(e)
		return func() {
			if had {
				sh.kv[e.Key] = prev
			} else {
				delete(sh.kv, e.Key)
			}
		}
	}
	return func() {}
}

// replayLog streams records from offset start in f, calling apply for
// each intact one. At the first torn or corrupt record it truncates f
// there — dropping that record and everything after it — and seeks to
// the new end so the caller can append. It returns the number of
// intact records and the absolute log length they occupy.
func replayLog(f walFile, start int64, apply func(*walEntry)) (int, int64, error) {
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("vault: seeking %s: %w", f.Name(), err)
	}
	var (
		r       = bufio.NewReader(f)
		off     = start // start offset of the record being decoded
		n       int
		header  [walHeaderSize]byte
		payload []byte
	)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			// io.EOF: clean end. ErrUnexpectedEOF: torn header.
			break
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > walMaxRecord {
			break // corrupt length field
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt payload
		}
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			break // checksummed garbage: treat like corruption
		}
		apply(&e)
		off += walHeaderSize + int64(length)
		n++
	}
	// Never truncate silently: a crash's torn tail is under one
	// record, but a corrupt byte early in a big log discards every
	// acked record after it — the operator's only chance to reach for
	// a snapshot is this line, because the evidence is gone after the
	// truncate.
	if size, err := f.Seek(0, io.SeekEnd); err == nil && size > off {
		log.Printf("vault: %s: dropping %d bytes after record %d (torn or corrupt tail)",
			f.Name(), size-off, n)
	}
	if err := f.Truncate(off); err != nil {
		return 0, 0, fmt.Errorf("vault: truncating torn tail of %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("vault: seeking %s: %w", f.Name(), err)
	}
	return n, off, nil
}

// encodeEntry frames e for the log: length + CRC32 header, JSON
// payload. buf is reused when large enough.
func encodeEntry(e *walEntry, buf []byte) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("vault: encoding log entry: %w", err)
	}
	need := walHeaderSize + len(payload)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	return buf, nil
}

// write encodes e and appends it to the shard's log in one write
// call, advancing wsize (the written — not yet necessarily durable —
// length). Caller holds sh.mu. A failed write truncates back to the
// pre-write offset so torn bytes never sit in front of later records;
// if even that rollback fails, the shard fail-stops — the file's
// write offset can no longer be trusted, and appending anyway would
// strand every later record behind a tear that replay truncates away.
func (sh *walShard) write(e *walEntry) error {
	buf, err := encodeEntry(e, sh.buf)
	if err != nil {
		return err
	}
	sh.buf = buf
	if _, err := sh.f.Write(buf); err != nil {
		werr := fmt.Errorf("vault: appending to %s: %w", sh.path, err)
		if rerr := sh.restore(sh.wsize); rerr != nil {
			sh.failStop(fmt.Errorf("%v; rollback failed: %v", werr, rerr))
		}
		return werr
	}
	sh.wsize += int64(len(buf))
	sh.lsize = sh.wsize
	sh.entries++
	sh.sinceCkpt++
	sh.ckptBytes += int64(len(buf))
	if e.Op != walOpCkpt {
		sh.seq++
	}
	return nil
}

// stage encodes e and appends the frame to the shard's in-memory
// batch buffer — the group-commit write path. The bytes reach the
// file when a batch leader flushes the buffer (awaitCommit); only
// the whole-batch failure paths can discard them, and those fail-stop
// the shard. Caller holds sh.mu.
func (sh *walShard) stage(e *walEntry) error {
	buf, err := encodeEntry(e, sh.buf)
	if err != nil {
		return err
	}
	sh.buf = buf
	sh.wbuf = append(sh.wbuf, buf...)
	sh.lsize += int64(len(buf))
	sh.entries++
	sh.sinceCkpt++
	sh.ckptBytes += int64(len(buf))
	sh.seq++
	return nil
}

// restore truncates the log to off and repositions the write offset
// there — the rollback after a failed append. Both steps must
// succeed: a truncate without the seek leaves the OS file offset
// beyond the end, and the next append would write mid-file garbage
// that replay cannot contain to the tail.
func (sh *walShard) restore(off int64) error {
	if err := sh.f.Truncate(off); err != nil {
		return fmt.Errorf("truncating %s to %d: %w", sh.path, off, err)
	}
	if _, err := sh.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("repositioning %s at %d: %w", sh.path, off, err)
	}
	return nil
}

// failStop marks the shard permanently failed (see ErrShardFailed),
// rolls back every pending group-commit record — map state and log
// bytes — and wakes all waiters so they observe the failure. Caller
// holds sh.mu.
func (sh *walShard) failStop(cause error) {
	if sh.failed == nil {
		sh.failed = cause
		log.Printf("vault: %v; shard %s fail-stopped (reads continue, mutations refused until restart)", cause, sh.path)
	}
	for i := len(sh.pending) - 1; i >= 0; i-- {
		sh.pending[i].undo()
	}
	sh.entries -= len(sh.pending)
	sh.sinceCkpt -= len(sh.pending)
	if sh.ckptBytes -= sh.lsize - sh.off; sh.ckptBytes < 0 {
		sh.ckptBytes = 0
	}
	sh.pending = sh.pending[:0]
	sh.wbuf = sh.wbuf[:0]
	// Best effort: the shard refuses mutations from here on, but a
	// successful truncate keeps unacked bytes out of the log so a
	// restart replays exactly the committed prefix.
	_ = sh.restore(sh.off)
	sh.wsize = sh.off
	sh.lsize = sh.off
	sh.commit.Broadcast()
}

// refuse returns the error a fail-stopped shard hands every mutation.
// Caller holds sh.mu and has checked sh.failed != nil.
func (sh *walShard) refuse() error {
	return fmt.Errorf("%w (%s: %v)", ErrShardFailed, sh.path, sh.failed)
}

// commitTo marks everything below target durable: the committed
// offset advances and the covered pending records drop their undos —
// they are acked. Caller holds sh.mu.
func (sh *walShard) commitTo(target int64) {
	sh.off = target
	n := 0
	for n < len(sh.pending) && sh.pending[n].end <= target {
		n++
	}
	if n > 0 {
		rest := copy(sh.pending, sh.pending[n:])
		for i := rest; i < len(sh.pending); i++ {
			sh.pending[i] = walPending{} // release undo closures
		}
		sh.pending = sh.pending[:rest]
	}
}

// awaitCommit blocks until the record ending at logical offset myEnd
// is durable, or the batch fails. Callers arrive holding sh.mu with
// their record staged in wbuf and a pending entry queued; the first
// one to find no flush in flight becomes the batch leader: it takes
// the whole staged buffer, writes and fsyncs it outside the lock (so
// later writers keep staging — they form the next batch), and wakes
// everyone with the shared result. A failed batch write or fsync
// fails every waiter it covered and fail-stops the shard: the
// waiters' records are interleaved in one flush, so no single record
// can be cleanly retried, and after a failed fsync durability can no
// longer be proven at all (see ErrShardFailed).
func (sh *walShard) awaitCommit(myEnd int64) error {
	for {
		if sh.off >= myEnd {
			return nil // a leader's flush covered us
		}
		if sh.failed != nil {
			return sh.failed // our batch failed; maps already rolled back
		}
		if !sh.syncing {
			sh.syncing = true
			if sh.commitWindow > 0 {
				// Adaptive batching: hold the leader role (syncing is
				// set, so no rival flush starts) but let go of the lock
				// so writers arriving inside the window stage into this
				// very batch instead of the next one.
				sh.mu.Unlock()
				time.Sleep(sh.commitWindow)
				sh.mu.Lock()
				if sh.failed != nil {
					// The shard fail-stopped while we slept (its wbuf is
					// already rolled back); surrender leadership and let
					// the loop report the failure.
					sh.syncing = false
					sh.commit.Broadcast()
					continue
				}
			}
			f := sh.f
			batch := sh.wbuf
			sh.wbuf = nil // writers arriving mid-flush stage a new buffer
			// Every staged record is in this batch, so the shard's seq
			// at take time is the batch's last record's seq — what the
			// replication ship needs to label the frames.
			lastSeq := sh.seq
			target := sh.wsize + int64(len(batch))
			sh.mu.Unlock()
			_, werr := f.Write(batch)
			var serr error
			if werr == nil {
				serr = f.Sync()
			}
			sh.mu.Lock()
			sh.syncing = false
			switch {
			case werr != nil:
				// The file may hold a partial batch; failStop's restore
				// truncates it back to the committed prefix.
				sh.failStop(fmt.Errorf("vault: appending batch to %s: %w", sh.path, werr))
			case serr != nil:
				sh.failStop(fmt.Errorf("vault: syncing %s: %w", sh.path, serr))
			default:
				sh.wsize = target
				sh.commitTo(target)
				// Ship only what an fsync covers, in strict log order:
				// leaders are serialized by `syncing`, and the hook runs
				// under the same lock hold that cleared it, so no later
				// batch can overtake this call.
				if sh.ship != nil && len(batch) > 0 {
					sh.ship(batch, lastSeq)
				}
			}
			sh.commit.Broadcast()
		} else {
			sh.commit.Wait()
		}
	}
}

// quiesce blocks until no group-commit fsync is in flight and no
// written record awaits one (off == wsize): the stable state
// compaction, checkpointing, Save, and Close need before they touch
// the shard's file. Caller holds sh.mu; quiesce may release and
// reacquire it.
func (sh *walShard) quiesce() {
	for sh.syncing || len(sh.pending) > 0 {
		sh.commit.Wait()
	}
}

// live returns the shard's live entry count (records plus tracked
// lockout counters and side-table keys). Caller holds sh.mu.
func (sh *walShard) live() int { return len(sh.records) + len(sh.lockouts) + len(sh.kv) }

// Dir returns the store's log directory.
func (d *Durable) Dir() string { return d.dir }

// Shards returns the shard count.
func (d *Durable) Shards() int { return len(d.shards) }

// shardFor picks the shard by FNV-1a of the user name — the same
// split as Sharded's (see FNV32a).
func (d *Durable) shardFor(user string) (*walShard, int) {
	i := int(FNV32a(user) % uint32(len(d.shards)))
	return &d.shards[i], i
}

// errSkipAppend is returned by a mutate precondition to turn the call
// into an acked no-op (nothing appended, nothing applied).
var errSkipAppend = errors.New("vault: skip append")

// mutate is the single write path: under the shard lock it runs pre
// (which may refuse the mutation, or skip it via errSkipAppend),
// writes e to the shard's log, applies it to the shard's maps, and —
// under SyncAlways — joins the shard's group commit, acking only once
// a shared fsync covers the record (rolling the map update back if
// the batch fails). It nudges the compactor when the shard's garbage
// crosses the configured ratio.
func (d *Durable) mutate(user string, e *walEntry, pre func(*walShard) error) error {
	if d.closed.Load() {
		return fmt.Errorf("vault: store is closed")
	}
	sh, i := d.shardFor(user)
	sh.mu.Lock()
	if sh.f == nil {
		// Close won the race between our closed-flag check and the
		// shard lock; without this re-check the append would fail with
		// an unhelpful ErrInvalid from the nil file.
		sh.mu.Unlock()
		return fmt.Errorf("vault: store is closed")
	}
	if sh.failed != nil {
		err := sh.refuse()
		sh.mu.Unlock()
		return err
	}
	if pre != nil {
		if err := pre(sh); err != nil {
			sh.mu.Unlock()
			if err == errSkipAppend {
				return nil
			}
			return err
		}
	}
	var err error
	var myseq uint64
	if d.opts.Sync == SyncAlways {
		if err := sh.stage(e); err != nil {
			sh.mu.Unlock()
			return err
		}
		myseq = sh.seq
		sh.pending = append(sh.pending, walPending{end: sh.lsize, undo: sh.applyUndo(e)})
		err = sh.awaitCommit(sh.lsize)
	} else {
		if err := sh.write(e); err != nil {
			sh.mu.Unlock()
			return err
		}
		myseq = sh.seq
		sh.apply(e)
		sh.off = sh.wsize
		sh.dirty = true
		sh.dirtyGen++
		// Ship the committed frame before releasing the lock so two
		// writers' frames reach the replication buffer in log order.
		if sh.ship != nil {
			sh.ship(sh.buf, myseq)
		}
	}
	needCompact := err == nil && sh.entries >= compactMinEntries &&
		float64(sh.entries-sh.live()) > d.opts.CompactRatio*float64(max(sh.live(), 1))
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if wait := d.replWait.Load(); wait != nil {
		// Quorum ack: block until the follower's fsync covers this
		// record. A wait failure errors the writer WITHOUT rolling back
		// or fail-stopping — the record is locally durable and the
		// stream will deliver it on reconnect, so state never diverges;
		// the caller just cannot claim replica coverage for it.
		if werr := (*wait)(i, myseq); werr != nil {
			return werr
		}
	}
	if needCompact && !d.opts.NoAutoCompact {
		select {
		case d.kick <- i:
		default: // compactor busy; it will be re-kicked by a later write
		}
	}
	return nil
}

// Put stores a record for a new user, appending it to the user's
// shard log before acking.
func (d *Durable) Put(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	return d.mutate(rec.User, &walEntry{Op: walOpPut, Rec: rec},
		func(sh *walShard) error {
			if _, ok := sh.records[rec.User]; ok {
				return ErrExists
			}
			return nil
		})
}

// Replace stores a record, overwriting any existing one (password
// change), appending before acking.
func (d *Durable) Replace(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	return d.mutate(rec.User, &walEntry{Op: walOpPut, Rec: rec}, nil)
}

// Get returns the record for user, or ErrNotFound.
func (d *Durable) Get(user string) (*passpoints.Record, error) {
	sh, _ := d.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.records[user]
	if !ok {
		return nil, ErrNotFound
	}
	return rec, nil
}

// Delete removes a user's record; deleting a missing user is a no-op
// and appends nothing.
func (d *Durable) Delete(user string) {
	_ = d.mutate(user, &walEntry{Op: walOpDel, User: user},
		func(sh *walShard) error {
			if _, ok := sh.records[user]; !ok {
				return errSkipAppend
			}
			return nil
		})
}

// SetLockout durably sets user's failed-attempt counter; failures <= 0
// clears it. It implements LockoutStore: the auth service writes
// every counter change through here so lockout state — the §5.1
// online-attack defense — survives a restart instead of resetting to
// a fresh attempt budget.
func (d *Durable) SetLockout(user string, failures int) error {
	if user == "" {
		return fmt.Errorf("vault: lockout entry must name a user")
	}
	if failures < 0 {
		failures = 0
	}
	return d.mutate(user, &walEntry{Op: walOpLock, User: user, Failures: failures}, nil)
}

// SetKV durably sets key's side-table blob to val, appending the write
// to key's shard log (FNV32a(key), the same split as records) before
// acking — so the blob survives a crash, rides checkpoints and
// compaction, and replicates to a follower exactly like a record. An
// empty or nil val deletes the key (a no-op append is skipped when the
// key is already absent). It implements the KVStore extension; the
// session tier persists its signing keys and revocation watermarks
// through here.
func (d *Durable) SetKV(key string, val []byte) error {
	if key == "" {
		return fmt.Errorf("vault: kv entry must have a key")
	}
	if len(val) == 0 {
		return d.mutate(key, &walEntry{Op: walOpKV, Key: key},
			func(sh *walShard) error {
				if _, ok := sh.kv[key]; !ok {
					return errSkipAppend
				}
				return nil
			})
	}
	// Copy val: the caller may reuse its buffer, and the shard map (and
	// a staged-but-unflushed log frame's JSON) must not alias it.
	v := make([]byte, len(val))
	copy(v, val)
	return d.mutate(key, &walEntry{Op: walOpKV, Key: key, Val: v}, nil)
}

// GetKV returns a copy of key's side-table blob and whether it exists.
func (d *Durable) GetKV(key string) ([]byte, bool) {
	sh, _ := d.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.kv[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// KVRange returns a copy of every side-table entry whose key starts
// with prefix ("" for all). Per-shard-consistent like Snapshot.
func (d *Durable) KVRange(prefix string) map[string][]byte {
	out := make(map[string][]byte)
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for k, v := range sh.kv {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				c := make([]byte, len(v))
				copy(c, v)
				out[k] = c
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// SetKVWatch installs (or with nil removes) the observer for
// side-table keys changed by replication (ApplyReplFrames and
// InstallShardSnapshot; val is nil for a deletion). The callback runs
// after every store lock is released, so it may call back into the
// store; it must tolerate duplicate and out-of-date deliveries (a
// snapshot install re-delivers every key it carries). Local SetKV
// calls are not observed — see the field comment on kvWatch.
func (d *Durable) SetKVWatch(fn func(key string, val []byte)) {
	if fn == nil {
		d.kvWatch.Store(nil)
		return
	}
	d.kvWatch.Store(&fn)
}

// Lockouts returns a copy of every persisted failed-attempt counter.
func (d *Durable) Lockouts() map[string]int {
	out := make(map[string]int)
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for u, n := range sh.lockouts {
			out[u] = n
		}
		sh.mu.Unlock()
	}
	return out
}

// Users returns all user names in sorted order.
func (d *Durable) Users() []string {
	users := make([]string, 0, d.Len())
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for u := range sh.records {
			users = append(users, u)
		}
		sh.mu.Unlock()
	}
	sort.Strings(users)
	return users
}

// Len returns the number of records.
func (d *Durable) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.records)
		sh.mu.Unlock()
	}
	return n
}

// All returns every record sorted by user — the attacker's view after
// a password-file compromise.
func (d *Durable) All() []*passpoints.Record {
	recs := d.Snapshot()
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return recs
}

// Snapshot returns every record in shard order without the global
// sort, per-shard-consistent exactly like Sharded.Snapshot.
func (d *Durable) Snapshot() []*passpoints.Record {
	recs := make([]*passpoints.Record, 0, d.Len())
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for _, r := range sh.records {
			recs = append(recs, r)
		}
		sh.mu.Unlock()
	}
	return recs
}

// Save fsyncs every shard log. Durability is continuous for this
// backend — the logs ARE the backing file — so Save's contract
// ("persist current state") reduces to flushing whatever the sync
// policy has deferred. The fsyncs run outside the shard locks, so a
// slow disk stalls Save, not concurrent appends; a failed fsync
// fail-stops the shard like any other (ErrShardFailed).
func (d *Durable) Save() error {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.f == nil {
			sh.mu.Unlock()
			return fmt.Errorf("vault: store is closed")
		}
		if sh.failed != nil {
			err := sh.refuse()
			sh.mu.Unlock()
			return err
		}
		sh.quiesce()
		f := sh.f
		gen := sh.dirtyGen
		sh.mu.Unlock()
		err := f.Sync()
		sh.mu.Lock()
		if err != nil {
			if sh.f == f && sh.failed == nil {
				sh.failStop(fmt.Errorf("vault: syncing %s: %w", sh.path, err))
			}
			sh.mu.Unlock()
			return fmt.Errorf("vault: syncing %s: %w", sh.path, err)
		}
		if sh.f == f && sh.dirtyGen == gen {
			sh.dirty = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// SaveTo exports the store as the canonical sorted-JSON snapshot the
// other two backends read and write — the migration/downgrade path
// out of the log format.
func (d *Durable) SaveTo(path string) error {
	return writeRecords(path, d.All())
}

// ImportJSON loads a JSON snapshot (the Vault/Sharded on-disk format)
// into an empty durable store, appending every record to its shard
// log — the in-place migration path for a deployment moving off the
// snapshot backends. It refuses to import over existing records.
// Records are appended unsynced and flushed once per shard at the
// end: per-record durability buys nothing here (a failed import is
// retried from the snapshot anyway), and one fsync per shard instead
// of per user keeps a million-record migration in seconds, not
// hours.
func (d *Durable) ImportJSON(path string) error {
	if d.Len() > 0 {
		return fmt.Errorf("vault: ImportJSON into non-empty store")
	}
	recs, err := loadRecords(path)
	if err != nil {
		return err
	}
	for _, r := range recs {
		// loadRecords already validated non-nil records and distinct,
		// non-empty users.
		sh, _ := d.shardFor(r.User)
		sh.mu.Lock()
		if sh.f == nil {
			sh.mu.Unlock()
			return fmt.Errorf("vault: store is closed")
		}
		if sh.failed != nil {
			err := sh.refuse()
			sh.mu.Unlock()
			return err
		}
		e := &walEntry{Op: walOpPut, Rec: r}
		if err := sh.write(e); err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.apply(e)
		sh.off = sh.wsize
		sh.dirty = true
		sh.dirtyGen++
		sh.mu.Unlock()
	}
	return d.Save()
}

// Compact synchronously rewrites every shard's log from its live map,
// discarding dead records. (For this backend Compact rewrites the
// logs themselves; use SaveTo for the JSON snapshot Sharded.Compact
// produces.)
func (d *Durable) Compact() error {
	for i := range d.shards {
		if err := d.CompactShard(i); err != nil {
			return err
		}
	}
	return nil
}

// CompactShard rewrites shard i's log from its live map: the new log
// is written to a temp file, fsynced, and renamed over the old one,
// so a crash mid-compaction leaves the previous log intact. The new
// log opens with a "full" generation marker, and any checkpoint file
// for the shard is removed afterwards — a compacted log is itself a
// complete snapshot, so recovery never needs (and must not trust) an
// older checkpoint over it. The shard is write-locked for the
// duration.
func (d *Durable) CompactShard(i int) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("vault: no shard %d", i)
	}
	sh := &d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return fmt.Errorf("vault: store is closed")
	}
	if sh.failed != nil {
		return sh.refuse()
	}
	// Wait out any in-flight group commit: the batch's fsync targets
	// the file we are about to replace.
	sh.quiesce()
	return d.rewriteShardLocked(i, sh)
}

// rewriteShardLocked rewrites shard i's log from its live maps behind
// a "full" generation marker — the shared tail of CompactShard and
// InstallShardSnapshot. Caller holds sh.mu with the shard quiesced.
func (d *Durable) rewriteShardLocked(i int, sh *walShard) error {
	id, err := newWalID()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, ".compact-*")
	if err != nil {
		return fmt.Errorf("vault: compaction temp file: %w", err)
	}
	tmpName := tmp.Name()
	ok := false
	defer func() {
		if !ok {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	w := bufio.NewWriter(tmp)
	n := 0
	writeEntry := func(e *walEntry) error {
		buf, err := encodeEntry(e, nil)
		if err != nil {
			return err
		}
		_, err = w.Write(buf)
		return err
	}
	if err := writeEntry(&walEntry{Op: walOpCkpt, Ckpt: id, Full: true}); err != nil {
		return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
	}
	for _, rec := range sh.records {
		if err := writeEntry(&walEntry{Op: walOpPut, Rec: rec}); err != nil {
			return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
		}
		n++
	}
	for user, failures := range sh.lockouts {
		if err := writeEntry(&walEntry{Op: walOpLock, User: user, Failures: failures}); err != nil {
			return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
		}
		n++
	}
	for key, val := range sh.kv {
		if err := writeEntry(&walEntry{Op: walOpKV, Key: key, Val: val}); err != nil {
			return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
		}
		n++
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("vault: compacting %s: %w", sh.path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("vault: syncing compacted %s: %w", sh.path, err)
	}
	// Size the new log before the rename commits it: failing here
	// still leaves the old log live, whereas any error after the
	// rename would leave sh.f pointing at the replaced inode and
	// every later acked append would vanish on restart.
	newOff, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("vault: sizing compacted %s: %w", sh.path, err)
	}
	if err := os.Rename(tmpName, sh.path); err != nil {
		return fmt.Errorf("vault: committing compacted %s: %w", sh.path, err)
	}
	ok = true
	if hook := d.testCrashAfterCompactRename; hook != nil {
		hook(i)
	}
	// Reopen the log by path rather than keeping tmp's descriptor.
	// The rename doesn't invalidate it, but fsyncs on a descriptor
	// whose inode was renamed into place have been observed to wedge
	// in the kernel under concurrent load on some filesystems; a
	// fresh open by the final path sidesteps that entirely.
	tmp.Close()
	nf, err := d.openFile(sh.path)
	if err != nil {
		// The compacted log is durably in place but we cannot append
		// to it: the shard's file state is unusable.
		sh.failStop(fmt.Errorf("vault: reopening compacted %s: %w", sh.path, err))
		return fmt.Errorf("vault: reopening compacted %s: %w", sh.path, err)
	}
	if _, err := nf.Seek(newOff, io.SeekStart); err != nil {
		nf.Close()
		sh.failStop(fmt.Errorf("vault: positioning compacted %s: %w", sh.path, err))
		return fmt.Errorf("vault: positioning compacted %s: %w", sh.path, err)
	}
	old := sh.f
	sh.f = nf
	sh.off = newOff
	sh.wsize = newOff
	sh.lsize = newOff
	sh.entries = n
	sh.sinceCkpt = 0
	sh.ckptBytes = 0
	sh.dirty = false
	sh.logID = id
	old.Close()
	// The compacted log supersedes any checkpoint; recovery prefers
	// the "full" marker, so a crash before this remove only leaves a
	// stale file the next open deletes.
	if err := os.Remove(sh.ckptPath); err != nil && !os.IsNotExist(err) {
		log.Printf("vault: removing stale checkpoint %s: %v", sh.ckptPath, err)
	}
	return syncDir(d.dir)
}

// compactLoop is the background compactor: it waits for shard indexes
// kicked by writers and rewrites those logs. One log rewrite at a
// time keeps the I/O burst bounded.
func (d *Durable) compactLoop() {
	defer d.bg.Done()
	for {
		select {
		case <-d.stop:
			return
		case i := <-d.kick:
			// Re-check under the lock via CompactShard? The ratio may
			// have been reset by an interleaved manual Compact; a
			// redundant rewrite is merely wasted I/O, not a bug.
			_ = d.CompactShard(i)
		}
	}
}

// syncLoop is the SyncInterval flusher: every SyncEvery it fsyncs
// shards with unsynced appends. The fsync runs outside the shard
// lock — one slow disk sync must stall this loop, not every
// foreground append to the shard — and dirty is cleared through a
// generation counter, so an append landing mid-sync keeps the shard
// dirty and the next tick covers it. A failed background fsync
// fail-stops the shard (ErrShardFailed): retrying would trust a
// kernel that may already have dropped the dirty pages, silently
// turning acked data non-durable.
func (d *Durable) syncLoop() {
	defer d.bg.Done()
	t := time.NewTicker(d.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			for i := range d.shards {
				sh := &d.shards[i]
				sh.mu.Lock()
				if !sh.dirty || sh.f == nil || sh.failed != nil {
					sh.mu.Unlock()
					continue
				}
				f := sh.f
				gen := sh.dirtyGen
				sh.mu.Unlock()
				err := f.Sync()
				sh.mu.Lock()
				switch {
				case err != nil:
					// Unless compaction already replaced (and fsynced)
					// the file we failed to sync, the shard's
					// durability can no longer be proven.
					if sh.f == f && sh.failed == nil {
						sh.failStop(fmt.Errorf("vault: background sync of %s: %w", sh.path, err))
					}
				case sh.f == f && sh.dirtyGen == gen:
					sh.dirty = false
				}
				sh.mu.Unlock()
			}
		}
	}
}

// Close stops the background goroutines, fsyncs every log, and closes
// the files. The store must not be used after Close; mutations on a
// closed store fail.
func (d *Durable) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stop)
	d.bg.Wait()
	var firstErr error
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.f != nil {
			sh.quiesce() // drain any in-flight group commit first
			if sh.failed == nil {
				if err := sh.f.Sync(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if err := sh.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// closeFiles releases shard files after a failed open, before any
// background goroutine exists.
func (d *Durable) closeFiles() {
	for i := range d.shards {
		if f := d.shards[i].f; f != nil {
			f.Close()
		}
	}
}

// walMeta is the meta.json document pinning the directory's layout
// and replication identity.
type walMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	// Epoch is the store's monotonic replication epoch (see Epoch /
	// SetEpoch); 0 — including its absence from pre-replication
	// directories — means "never participated in a failover".
	Epoch uint64 `json:"epoch,omitempty"`
}

// loadOrInitMeta reads the directory's metadata, writing meta.json
// (atomically, before any log exists) on first creation. An existing
// directory's shard count always wins over the caller's request — the
// logs were partitioned under it.
func loadOrInitMeta(dir string, want int) (walMeta, error) {
	path := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(path)
	if err == nil {
		var m walMeta
		if err := json.Unmarshal(data, &m); err != nil {
			return walMeta{}, fmt.Errorf("vault: parsing %s: %w", path, err)
		}
		if m.Shards <= 0 {
			return walMeta{}, fmt.Errorf("vault: %s has invalid shard count %d", path, m.Shards)
		}
		return m, nil
	}
	if !os.IsNotExist(err) {
		return walMeta{}, fmt.Errorf("vault: reading %s: %w", path, err)
	}
	// Fresh directory — but refuse to guess if logs are already there
	// (a hand-deleted meta.json must not silently re-partition them).
	if logs, _ := filepath.Glob(filepath.Join(dir, "shard-*.wal")); len(logs) > 0 {
		return walMeta{}, fmt.Errorf("vault: %s has shard logs but no meta.json", dir)
	}
	m := walMeta{Version: 1, Shards: want}
	if err := writeMetaFile(dir, m); err != nil {
		return walMeta{}, err
	}
	return m, nil
}

// writeMetaFile durably rewrites the directory's meta.json: temp file,
// fsync, rename, directory fsync.
func writeMetaFile(dir string, m walMeta) error {
	path := filepath.Join(dir, "meta.json")
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".meta-*")
	if err != nil {
		return fmt.Errorf("vault: meta temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("vault: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("vault: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("vault: committing %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so file creations and renames inside it
// are themselves durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("vault: opening %s for sync: %w", dir, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("vault: syncing %s: %w", dir, err)
	}
	return nil
}

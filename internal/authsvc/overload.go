package authsvc

import (
	"context"
	"strconv"
	"time"

	"clickpass/internal/par"
)

// Priority classifies a request for admission under overload: when
// the wait queue for the shared limiter fills, low-priority work is
// shed first so the capacity that remains goes to the traffic that
// matters most. Logins outrank everything — during a storm the
// product is "users can get in" — while password changes and
// enrollments can wait, and administrative resets ride lowest (they
// are rare, operator-paced, and retryable by construction).
type Priority int

// Admission priorities, highest first.
const (
	// PriorityHigh: logins (and pings — they are cheap health probes
	// whose loss would blind monitoring exactly when it matters).
	PriorityHigh Priority = iota
	// PriorityNormal: password changes and enrollments.
	PriorityNormal
	// PriorityLow: administrative resets and anything unclassified.
	PriorityLow
	numPriorities
)

// String names the priority for metrics labels and log lines.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	}
	return "p" + strconv.Itoa(int(p))
}

// PriorityFor maps an op to its admission priority.
func PriorityFor(op Op) Priority {
	switch op {
	case OpLogin, OpPing, OpValidate:
		// Validate normally never reaches admission (WithSession answers
		// it first); the priority covers servers without a session tier,
		// where it is refused cheaply and should not queue behind bulk
		// work to say so.
		return PriorityHigh
	case OpChange, OpEnroll:
		return PriorityNormal
	default:
		return PriorityLow
	}
}

// OverloadPolicy configures WithOverload: how deep the bounded
// admission wait queue may grow, and the watermarks (fractions of
// Queue) above which each lower priority is shed. Depth at or past a
// priority's budget returns CodeOverloaded immediately — a refusal
// measured in microseconds, not a slot in a queue that will outlive
// the caller's patience. Past Queue itself, everything sheds: the
// hard ceiling that keeps worst-case queueing delay bounded at
// roughly Queue/capacity service times.
type OverloadPolicy struct {
	// Queue bounds the total admission wait queue (the high-priority
	// budget). <= 0 disables overload handling entirely (unbounded
	// queueing, the legacy behavior).
	Queue int
	// NormalMark is the fraction of Queue above which PriorityNormal
	// requests are shed; 0 selects DefaultNormalMark.
	NormalMark float64
	// LowMark is the fraction of Queue above which PriorityLow
	// requests are shed; 0 selects DefaultLowMark.
	LowMark float64
	// RetryAfter is the hint returned with every shed response
	// (Retry-After on HTTP); 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
}

// Default overload-policy knobs.
const (
	// DefaultNormalMark sheds changes/enrolls once the queue is half
	// full.
	DefaultNormalMark = 0.5
	// DefaultLowMark sheds resets once the queue is a quarter full.
	DefaultLowMark = 0.25
	// DefaultRetryAfter is the shed-response retry hint.
	DefaultRetryAfter = time.Second
)

// budgets returns the per-priority queue-depth bounds, indexed by
// Priority. Every priority gets at least depth 1 when Queue > 0, so a
// watermark rounding to zero degrades to "admit only when a slot is
// free", not "always shed".
func (p OverloadPolicy) budgets() [numPriorities]int {
	var b [numPriorities]int
	if p.Queue <= 0 {
		return b
	}
	normal, low := p.NormalMark, p.LowMark
	if normal <= 0 {
		normal = DefaultNormalMark
	}
	if low <= 0 {
		low = DefaultLowMark
	}
	b[PriorityHigh] = p.Queue
	b[PriorityNormal] = max(1, int(float64(p.Queue)*normal))
	b[PriorityLow] = max(1, int(float64(p.Queue)*low))
	return b
}

func (p OverloadPolicy) retryAfter() time.Duration {
	if p.RetryAfter <= 0 {
		return DefaultRetryAfter
	}
	return p.RetryAfter
}

// reqMeta is the per-request annotation channel between middleware
// stages: WithLog installs it, WithOverload fills in what the log
// line cannot otherwise see (queue wait, shed/deadline outcome).
type reqMeta struct {
	queueWait time.Duration
	shed      bool
	deadline  bool
}

type reqMetaKey struct{}

// metaFrom returns the request's annotation record, or nil when no
// logging middleware installed one.
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(reqMetaKey{}).(*reqMeta)
	return m
}

// WithOverload is priority admission over a shared limiter — the
// overload-robust replacement for WithAdmission. Each request joins
// the limiter's bounded wait queue under its priority's depth budget
// (see OverloadPolicy); a request that would push the queue past its
// watermark is refused with CodeOverloaded in microseconds, and a
// request whose deadline expires while queued — or that emerges from
// the queue with its budget already burned — is dropped with
// CodeUnavailable before touching the vault. m (optional, may be
// nil) receives shed counts by priority and queue-wait observations.
func WithOverload(lim *par.Limiter, pol OverloadPolicy, m *Metrics) Middleware {
	budgets := pol.budgets()
	retryMs := int(pol.retryAfter().Milliseconds())
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req Request) Response {
			pr := PriorityFor(req.Op)
			t0 := time.Now()
			err := lim.AcquireQueued(ctx, budgets[pr])
			if err == par.ErrSaturated {
				if m != nil {
					m.observeShed(pr)
				}
				if meta := metaFrom(ctx); meta != nil {
					meta.shed = true
				}
				return Response{Version: Version, Code: CodeOverloaded,
					Err: "overloaded: " + pr.String() + "-priority queue full", RetryAfterMs: retryMs}
			}
			if err != nil {
				if meta := metaFrom(ctx); meta != nil {
					meta.deadline = true
				}
				return Response{Version: Version, Code: CodeUnavailable, Err: "deadline expired in admission queue"}
			}
			defer lim.Release()
			wait := time.Since(t0)
			if m != nil {
				m.observeQueueWait(wait, pr)
			}
			if meta := metaFrom(ctx); meta != nil {
				meta.queueWait = wait
			}
			// The slot arrived, but possibly too late: never spend vault
			// and hash work on a request whose caller has already given
			// up. (ctx.Err() is a cheap atomic read, not a syscall.)
			if ctx.Err() != nil {
				if meta := metaFrom(ctx); meta != nil {
					meta.deadline = true
				}
				return Response{Version: Version, Code: CodeUnavailable, Err: "deadline exceeded"}
			}
			return next.Handle(ctx, req)
		})
	}
}

package ccp_test

import (
	"fmt"
	"log"

	"clickpass/internal/ccp"
	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/rng"
)

// A Cued Click-Points password is one click per image; each click's
// grid square selects the next image, so wrong clicks derail the image
// path instead of producing explicit feedback.
func ExampleSystem() {
	scheme, err := core.NewCentered(13)
	if err != nil {
		log.Fatal(err)
	}
	sys := &ccp.System{
		Images:     []*imagegen.Image{imagegen.Cars(), imagegen.Pool()},
		Scheme:     scheme,
		Clicks:     5,
		Iterations: 100,
	}
	var clicked []geom.Point
	rec, err := sys.Enroll("alice", ccp.RecordingClicker(ccp.HotspotClicker(rng.New(1)), &clicked))
	if err != nil {
		log.Fatal(err)
	}
	ok, err := sys.Verify(rec, ccp.ReplayClicker(clicked, 5, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5px off accepted:", ok)
	ok, err = sys.Verify(rec, ccp.ReplayClicker(clicked, 8, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("8px off accepted:", ok)
	// Output:
	// 5px off accepted: true
	// 8px off accepted: false
}

package par

import (
	"fmt"
	"sync"
)

// Stream runs n tasks on a bounded worker pool and delivers their
// results to emit strictly in index order, holding at most O(workers)
// results in memory at any moment. It is the streaming counterpart of
// Map for outputs too large to materialize: a 10M-element run keeps a
// fixed-size reorder window alive instead of an n-element slice.
//
// prepare(i) runs serially, in strict index order, at claim time — one
// call at a time under the pool's claim lock. It exists so a caller
// can consume ordered shared state (e.g. split the i-th rng stream off
// a base source) and capture it into the returned task closure; keep
// it cheap, it is on the serial path. The returned task runs
// concurrently on the claiming worker. emit(i, v) runs on the calling
// goroutine, in index order, one call at a time.
//
// Determinism and failure semantics match Map: results are delivered
// in index order regardless of scheduling, a panicking task is
// converted to an error, and the error returned is the one from the
// lowest-numbered failing task (tasks are claimed in index order and
// emitted in index order, so the first failure the emitter meets is
// the minimum failing index). An error returned by emit stops the
// stream the same way. Workers ahead of the emit cursor block once
// they are a full window ahead, so a slow emit applies backpressure
// instead of growing a buffer.
func Stream[T any](workers, n int, prepare func(i int) func() (T, error), emit func(i int, v T) error) error {
	if n < 0 {
		return fmt.Errorf("par: negative task count %d", n)
	}
	if n == 0 {
		return nil
	}
	w := clamp(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			v, err := runTask(prepare, i)
			if err == nil {
				err = emit(i, v)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Reorder window: workers may run at most `window` tasks ahead of
	// the emit cursor, so buffered results are bounded by the worker
	// count, not by n.
	window := 2 * w
	type slot struct {
		val   T
		err   error
		ready bool
	}
	slots := make([]slot, window)
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		claimNext int  // next index to hand to a worker
		emitNext  int  // next index the emitter will deliver
		stopped   bool // set on first error; halts claiming and emitting
	)

	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for !stopped && claimNext < n && claimNext >= emitNext+window {
					cond.Wait()
				}
				if stopped || claimNext >= n {
					mu.Unlock()
					return
				}
				i := claimNext
				claimNext++
				task, err := prepareTask(prepare, i)
				mu.Unlock()
				var v T
				if err == nil {
					v, err = callTask(task, i)
				}
				mu.Lock()
				s := &slots[i%window]
				s.val, s.err, s.ready = v, err, true
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}

	var firstErr error
	mu.Lock()
	for emitNext < n {
		s := &slots[emitNext%window]
		for !s.ready {
			cond.Wait()
		}
		i := emitNext
		v, err := s.val, s.err
		var zero T
		s.val, s.err, s.ready = zero, nil, false
		mu.Unlock()
		if err == nil {
			err = emit(i, v)
		}
		mu.Lock()
		emitNext++
		if err != nil {
			firstErr = err
			stopped = true
			cond.Broadcast()
			break
		}
		cond.Broadcast()
	}
	mu.Unlock()
	wg.Wait()
	return firstErr
}

// runTask executes prepare(i) and its task inline with panic
// containment — the serial path of Stream.
func runTask[T any](prepare func(i int) func() (T, error), i int) (T, error) {
	task, err := prepareTask(prepare, i)
	if err != nil {
		var zero T
		return zero, err
	}
	return callTask(task, i)
}

// prepareTask invokes prepare with the same panic containment as
// tasks, attributing a failure to the index being claimed.
func prepareTask[T any](prepare func(i int) func() (T, error), i int) (task func() (T, error), err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d: prepare panicked: %v", i, r)
		}
	}()
	return prepare(i), nil
}

// callTask invokes a streamed task, converting a panic into an error
// so one bad task cannot tear down the whole process from a worker
// goroutine.
func callTask[T any](task func() (T, error), i int) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d panicked: %v", i, r)
		}
	}()
	return task()
}

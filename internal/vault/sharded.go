package vault

import (
	"fmt"
	"sort"
	"sync"

	"clickpass/internal/passpoints"
)

// DefaultShards is the shard count used when a caller passes n <= 0.
// 32 shards keep the per-shard maps small and make writer collisions
// rare without bloating an empty store.
const DefaultShards = 32

// Sharded is a Store partitioned into N independently locked shards
// keyed by FNV-1a of the user name. Reads on different shards never
// contend, and a writer blocks only 1/N of the key space instead of
// every reader, so throughput scales with cores under the read-heavy
// mix an authentication front end produces. The per-shard maps are
// guarded by RWMutexes; cross-shard operations (Users, Len, All, Save)
// take a per-shard-consistent snapshot — each shard is read atomically,
// but the shards are visited in sequence, so a concurrent writer may
// land between visits. That is the same guarantee a single-lock vault
// gives a caller who performs two reads.
type Sharded struct {
	shards []shard
	path   string // empty for purely in-memory stores
}

type shard struct {
	mu      sync.RWMutex
	records map[string]*passpoints.Record
}

// NewSharded returns an empty in-memory sharded store with n shards
// (n <= 0 selects DefaultShards).
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Sharded{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].records = make(map[string]*passpoints.Record)
	}
	return s
}

// OpenSharded loads a sharded store from path, creating an empty one
// if the file does not exist. The on-disk format is identical to the
// single-lock vault's, so the two backends are interchangeable on the
// same file. Saves write back to the same path.
func OpenSharded(path string, n int) (*Sharded, error) {
	s := NewSharded(n)
	s.path = path
	recs, err := loadRecords(path)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		sh := s.shardFor(r.User)
		sh.records[r.User] = r
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// shardFor picks the shard by FNV-1a of the user name (see FNV32a).
func (s *Sharded) shardFor(user string) *shard {
	return &s.shards[FNV32a(user)%uint32(len(s.shards))]
}

// Put stores a record for a new user.
func (s *Sharded) Put(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	sh := s.shardFor(rec.User)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.records[rec.User]; ok {
		return ErrExists
	}
	sh.records[rec.User] = rec
	return nil
}

// Replace stores a record, overwriting any existing one (password
// change).
func (s *Sharded) Replace(rec *passpoints.Record) error {
	if rec == nil || rec.User == "" {
		return fmt.Errorf("vault: record must have a user")
	}
	sh := s.shardFor(rec.User)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.records[rec.User] = rec
	return nil
}

// Get returns the record for user, or ErrNotFound.
func (s *Sharded) Get(user string) (*passpoints.Record, error) {
	sh := s.shardFor(user)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[user]
	if !ok {
		return nil, ErrNotFound
	}
	return rec, nil
}

// Delete removes a user's record; deleting a missing user is not an
// error.
func (s *Sharded) Delete(user string) {
	sh := s.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.records, user)
}

// Users returns all user names in sorted order.
func (s *Sharded) Users() []string {
	users := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for u := range sh.records {
			users = append(users, u)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(users)
	return users
}

// Len returns the number of records.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.records)
		sh.mu.RUnlock()
	}
	return n
}

// All returns every record sorted by user — the attacker's view after
// a password-file compromise.
func (s *Sharded) All() []*passpoints.Record {
	recs := s.Snapshot()
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return recs
}

// Snapshot returns every record in shard order without the global sort
// All performs. Each shard is copied under its read lock, so the
// snapshot is per-shard-consistent; use it when the caller iterates
// once and does not need a canonical order.
func (s *Sharded) Snapshot() []*passpoints.Record {
	recs := make([]*passpoints.Record, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, r := range sh.records {
			recs = append(recs, r)
		}
		sh.mu.RUnlock()
	}
	return recs
}

// Save writes the store to its backing file atomically. It fails for
// purely in-memory stores.
func (s *Sharded) Save() error {
	if s.path == "" {
		return fmt.Errorf("vault: no backing file configured")
	}
	return s.SaveTo(s.path)
}

// SaveTo writes the store to the given path atomically, in the same
// sorted-JSON format as the single-lock vault.
func (s *Sharded) SaveTo(path string) error {
	return writeRecords(path, s.All())
}

// Compact rewrites the backing file from the current snapshot: the
// canonical sorted encoding with any bytes a larger previous state
// left behind discarded by the atomic rename. It is Save under a name
// that states the intent, for callers running it on a maintenance
// schedule.
func (s *Sharded) Compact() error { return s.Save() }

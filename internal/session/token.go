package session

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
)

// Alg selects the token signature algorithm.
type Alg byte

// Supported algorithms. Ed25519 is the default: anyone holding only
// the public half could verify, leaving the door open to verify-only
// relying parties. HMAC-SHA256 is the cheap symmetric option for
// deployments where every verifier is also a minter (ours is — the
// secret replicates to the follower either way).
const (
	AlgEd25519 Alg = 1
	AlgHMAC    Alg = 2
)

// String returns the algorithm's flag spelling.
func (a Alg) String() string {
	switch a {
	case AlgEd25519:
		return "ed25519"
	case AlgHMAC:
		return "hmac"
	default:
		return fmt.Sprintf("Alg(%d)", byte(a))
	}
}

// ParseAlg parses the -session-alg flag spellings.
func ParseAlg(s string) (Alg, error) {
	switch s {
	case "", "ed25519":
		return AlgEd25519, nil
	case "hmac", "hmac-sha256":
		return AlgHMAC, nil
	default:
		return 0, fmt.Errorf("session: unknown algorithm %q (want ed25519 or hmac)", s)
	}
}

// Token wire format, before base64: a fixed header, the user name,
// then the signature over everything before it.
//
//	version  1 byte  (tokenVersion)
//	alg      1 byte  (Alg)
//	gen      8 bytes LE — signing key generation
//	expiry   8 bytes LE — unix nanoseconds
//	minted   8 bytes LE — unix nanoseconds (revocation watermark input)
//	userlen  2 bytes LE
//	user     userlen bytes
//	sig      64 bytes (Ed25519) or 32 bytes (HMAC-SHA256)
//
// The whole frame is base64.RawURLEncoding-encoded; decoding is
// Strict so a token string has exactly one accepted spelling (a
// non-canonical final sextet must not alias a valid token — the fuzz
// test relies on this).
const (
	tokenVersion = 1
	tokenHdrLen  = 1 + 1 + 8 + 8 + 8 + 2
	tokenMaxUser = 1 << 12
)

var tokenEncoding = base64.RawURLEncoding.Strict()

// claims is a token's decoded, signature-free content.
type claims struct {
	alg    Alg
	gen    uint64
	expiry int64 // unix nanos
	minted int64 // unix nanos
	user   string
}

// ErrBadToken marks a token that is structurally invalid or whose
// signature does not verify. Deliberately one coarse error: the
// rejection reason granularity lives in metrics, not in what a caller
// (or attacker) is told.
var ErrBadToken = errors.New("session: invalid token")

// encodeToken builds the signed, base64 token for c using k.
func encodeToken(c *claims, k *key) (string, error) {
	if len(c.user) == 0 || len(c.user) > tokenMaxUser {
		return "", fmt.Errorf("session: user name length %d out of range", len(c.user))
	}
	payload := make([]byte, tokenHdrLen+len(c.user))
	payload[0] = tokenVersion
	payload[1] = byte(c.alg)
	binary.LittleEndian.PutUint64(payload[2:], c.gen)
	binary.LittleEndian.PutUint64(payload[10:], uint64(c.expiry))
	binary.LittleEndian.PutUint64(payload[18:], uint64(c.minted))
	binary.LittleEndian.PutUint16(payload[26:], uint16(len(c.user)))
	copy(payload[tokenHdrLen:], c.user)
	sig, err := k.sign(payload)
	if err != nil {
		return "", err
	}
	return tokenEncoding.EncodeToString(append(payload, sig...)), nil
}

// decodeToken parses a base64 token into its claims and returns the
// payload and signature slices for verification. It validates
// structure only — signature, expiry, generation, and revocation are
// the Manager's checks.
func decodeToken(token string) (*claims, []byte, []byte, error) {
	raw, err := tokenEncoding.DecodeString(token)
	if err != nil {
		return nil, nil, nil, ErrBadToken
	}
	if len(raw) < tokenHdrLen {
		return nil, nil, nil, ErrBadToken
	}
	if raw[0] != tokenVersion {
		return nil, nil, nil, ErrBadToken
	}
	alg := Alg(raw[1])
	var sigLen int
	switch alg {
	case AlgEd25519:
		sigLen = ed25519.SignatureSize
	case AlgHMAC:
		sigLen = sha256.Size
	default:
		return nil, nil, nil, ErrBadToken
	}
	userLen := int(binary.LittleEndian.Uint16(raw[26:]))
	if userLen == 0 || userLen > tokenMaxUser || len(raw) != tokenHdrLen+userLen+sigLen {
		return nil, nil, nil, ErrBadToken
	}
	payload := raw[:tokenHdrLen+userLen]
	sig := raw[tokenHdrLen+userLen:]
	c := &claims{
		alg:    alg,
		gen:    binary.LittleEndian.Uint64(raw[2:]),
		expiry: int64(binary.LittleEndian.Uint64(raw[10:])),
		minted: int64(binary.LittleEndian.Uint64(raw[18:])),
		user:   string(raw[tokenHdrLen : tokenHdrLen+userLen]),
	}
	return c, payload, sig, nil
}

// sign signs payload with the key's secret under its algorithm.
func (k *key) sign(payload []byte) ([]byte, error) {
	switch k.alg {
	case AlgEd25519:
		return ed25519.Sign(k.priv, payload), nil
	case AlgHMAC:
		m := hmac.New(sha256.New, k.secret)
		m.Write(payload)
		return m.Sum(nil), nil
	default:
		return nil, fmt.Errorf("session: key has unknown algorithm %d", k.alg)
	}
}

// verify reports whether sig is a valid signature of payload under k.
func (k *key) verify(payload, sig []byte) bool {
	switch k.alg {
	case AlgEd25519:
		return ed25519.Verify(k.pub, payload, sig)
	case AlgHMAC:
		m := hmac.New(sha256.New, k.secret)
		m.Write(payload)
		return hmac.Equal(m.Sum(nil), sig)
	default:
		return false
	}
}

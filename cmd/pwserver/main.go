// Command pwserver serves a PassPoints vault over TCP (length-prefixed
// JSON frames) and HTTP:
//
//	pwserver -vault v.json -tcp :7700 -http :7780 -side 13 -lockout 10
//
// The lockout bounds online dictionary attacks (§5.1): after N failed
// logins an account refuses further attempts until an administrative
// reset.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

func main() {
	var (
		vaultPath = flag.String("vault", "vault.json", "vault file path")
		tcpAddr   = flag.String("tcp", ":7700", "TCP listen address (empty to disable)")
		httpAddr  = flag.String("http", "", "HTTP listen address (empty to disable)")
		imageW    = flag.Int("image-w", 451, "image width (pixels)")
		imageH    = flag.Int("image-h", 331, "image height (pixels)")
		side      = flag.Int("side", 13, "grid-square side (pixels)")
		schemeArg = flag.String("scheme", "centered", "discretization scheme: centered or robust")
		iter      = flag.Int("iterations", 1000, "hash iterations")
		lockout   = flag.Int("lockout", authproto.DefaultLockout, "failed attempts before lockout")
		useTLS    = flag.Bool("tls", false, "wrap the TCP listener in TLS with an ephemeral self-signed certificate")
	)
	flag.Parse()

	var (
		scheme core.Scheme
		err    error
	)
	switch *schemeArg {
	case "centered":
		scheme, err = core.NewCentered(*side)
	case "robust":
		scheme, err = core.NewRobust2D(*side, core.MostCentered, 0)
	default:
		err = fmt.Errorf("unknown scheme %q", *schemeArg)
	}
	if err != nil {
		fatal(err)
	}
	v, err := vault.Open(*vaultPath)
	if err != nil {
		fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: *imageW, H: *imageH},
		Clicks:     passpoints.DefaultClicks,
		Scheme:     scheme,
		Iterations: *iter,
	}
	srv, err := authproto.NewServer(cfg, v, *lockout)
	if err != nil {
		fatal(err)
	}
	if *tcpAddr == "" && *httpAddr == "" {
		fatal(fmt.Errorf("nothing to serve: both -tcp and -http are empty"))
	}
	errc := make(chan error, 2)
	if *tcpAddr != "" {
		l, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatal(err)
		}
		if *useTLS {
			cert, err := authproto.SelfSignedCert([]string{"127.0.0.1", "localhost"}, 365*24*time.Hour)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("pwserver: TLS on %s (%s %dx%d, lockout %d; self-signed cert %x...)\n",
				l.Addr(), scheme.Name(), *side, *side, *lockout, cert.Certificate[0][:8])
			go func() { errc <- srv.ServeTLS(l, cert) }()
		} else {
			fmt.Printf("pwserver: TCP on %s (%s %dx%d, lockout %d)\n",
				l.Addr(), scheme.Name(), *side, *side, *lockout)
			go func() { errc <- srv.Serve(l) }()
		}
	}
	if *httpAddr != "" {
		fmt.Printf("pwserver: HTTP on %s\n", *httpAddr)
		go func() { errc <- http.ListenAndServe(*httpAddr, srv.HTTPHandler()) }()
	}
	fatal(<-errc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwserver:", err)
	os.Exit(1)
}

package vault

import (
	"errors"
	"testing"
	"time"

	"clickpass/internal/passpoints"
)

func flakyRecord(user string) *passpoints.Record {
	return &passpoints.Record{
		User: user, Kind: passpoints.KindCentered,
		SquareSidePx: 13, Iterations: 2,
		Salt: []byte{1, 2, 3, 4}, Digest: []byte{5, 6, 7, 8},
	}
}

// TestFlakyDeterministicPerSeed: the same seed over the same operation
// order yields the exact same fault schedule.
func TestFlakyDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		f := NewFlaky(New(), FlakyOptions{Seed: seed, ErrRate: 0.4})
		if err := f.Put(flakyRecord("u")); err != nil && !errors.Is(err, ErrInjected) {
			t.Fatal(err)
		}
		faults := make([]bool, 300)
		for i := range faults {
			_, err := f.Get("u")
			faults[i] = errors.Is(err, ErrInjected)
		}
		return faults
	}
	a, b := run(99), run(99)
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] {
			injected++
		}
	}
	if injected < 60 || injected > 180 {
		t.Errorf("err=0.4 over 300 gets injected %d faults; schedule looks wrong", injected)
	}
}

// TestFlakyNeverFalseNotFound: an injected read failure must come back
// ErrInjected — a false ErrNotFound would make the auth service burn a
// lockout attempt on an infrastructure fault.
func TestFlakyNeverFalseNotFound(t *testing.T) {
	f := NewFlaky(New(), FlakyOptions{Seed: 3, ErrRate: 0.5})
	if err := retryPut(f, flakyRecord("alice")); err != nil {
		t.Fatal(err)
	}
	var sawInjected bool
	for i := 0; i < 200; i++ {
		rec, err := f.Get("alice")
		switch {
		case err == nil:
			if rec.User != "alice" {
				t.Fatalf("got record %+v", rec)
			}
		case errors.Is(err, ErrInjected):
			sawInjected = true
		default:
			t.Fatalf("Get(alice) = %v; existing user must never see %v", err, err)
		}
		if errors.Is(err, ErrNotFound) {
			t.Fatal("injected fault surfaced as ErrNotFound")
		}
	}
	if !sawInjected {
		t.Error("err=0.5 over 200 gets never injected; wrapper inert?")
	}
}

// TestFlakyFaultBeforeMutation: an injected Put error leaves the
// wrapped store untouched — no half-applied state.
func TestFlakyFaultBeforeMutation(t *testing.T) {
	inner := New()
	f := NewFlaky(inner, FlakyOptions{Seed: 1, ErrRate: 1})
	if err := f.Put(flakyRecord("ghost")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put = %v, want ErrInjected at rate 1", err)
	}
	if inner.Len() != 0 {
		t.Fatalf("failed Put reached the wrapped store: %d records", inner.Len())
	}
	// Administrative surfaces are never faulted.
	if got := f.Len(); got != 0 {
		t.Errorf("Len() = %d", got)
	}
	if users := f.Users(); len(users) != 0 {
		t.Errorf("Users() = %v", users)
	}
}

// TestFlakyStallEvery: every Nth mutation stalls for the configured
// duration — the fsync-pause shape.
func TestFlakyStallEvery(t *testing.T) {
	f := NewFlaky(New(), FlakyOptions{Seed: 1, StallEvery: 3, Stall: 30 * time.Millisecond})
	var slow int
	for i := 0; i < 6; i++ {
		t0 := time.Now()
		_ = f.Replace(flakyRecord("u"))
		if time.Since(t0) >= 25*time.Millisecond {
			slow++
		}
	}
	if slow != 2 {
		t.Fatalf("6 mutations with StallEvery=3 stalled %d times, want 2", slow)
	}
}

// TestFlakyPreservesLockoutStore: wrapping a LockoutStore backend must
// keep the extension visible (the auth service type-asserts it), and
// counter writes go through the fault schedule.
func TestFlakyPreservesLockoutStore(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 2, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	f := NewFlaky(d, FlakyOptions{Seed: 5, ErrRate: 0.5})
	locks, ok := f.(LockoutStore)
	if !ok {
		t.Fatal("NewFlaky dropped the LockoutStore extension")
	}
	var injected, applied int
	for i := 0; injected == 0 || applied == 0; i++ {
		if i > 500 {
			t.Fatalf("500 SetLockout calls: injected=%d applied=%d", injected, applied)
		}
		if err := locks.SetLockout("bob", 3); errors.Is(err, ErrInjected) {
			injected++
		} else if err != nil {
			t.Fatal(err)
		} else {
			applied++
		}
	}
	if got := locks.Lockouts()["bob"]; got != 3 {
		t.Fatalf("Lockouts()[bob] = %d, want 3", got)
	}

	// A plain in-memory store must NOT grow the extension.
	if _, ok := NewFlaky(New(), FlakyOptions{Seed: 1}).(LockoutStore); ok {
		t.Fatal("NewFlaky invented a LockoutStore over a plain store")
	}
}

// retryPut retries past injected faults until the mutation lands.
func retryPut(s Store, rec *passpoints.Record) error {
	for i := 0; i < 100; i++ {
		err := s.Put(rec)
		if !errors.Is(err, ErrInjected) {
			return err
		}
	}
	return errors.New("Put never got past the fault injector")
}

// Attack walk-through: steal a password file and mount the paper's
// human-seeded offline dictionary attack against both discretization
// schemes at equal guaranteed tolerance — the experiment behind the
// paper's headline security number (Figure 8: with r = 9, up to 79% of
// passwords fall to one dictionary under Robust Discretization versus
// 26% under Centered).
package main

import (
	"fmt"
	"log"

	"clickpass/internal/attack"
	"clickpass/internal/core"
	"clickpass/internal/imagegen"
	"clickpass/internal/report"
	"clickpass/internal/study"
	"os"
)

func main() {
	const seed = 7
	fmt.Println("1. a deployment collects graphical passwords (simulated field study)")
	fmt.Println("2. researchers collect 30 lab passwords per image -> permutation dictionary")
	fmt.Println("3. the server's password file leaks: hashes + clear grid identifiers")
	fmt.Println("4. the dictionary is run against every account, per scheme and tolerance")
	fmt.Println()

	for _, img := range imagegen.Gallery() {
		field, err := study.Run(study.FieldConfig(img, seed))
		if err != nil {
			log.Fatal(err)
		}
		lab, err := study.Run(study.LabConfig(img, seed+100))
		if err != nil {
			log.Fatal(err)
		}
		dict, err := attack.BuildDictionary(lab, 5)
		if err != nil {
			log.Fatal(err)
		}
		tb := report.NewTable(
			fmt.Sprintf("image %q: %d accounts, %.0f-bit dictionary", img.Name, len(field.Passwords), dict.Bits()),
			"guaranteed r", "Centered grid", "cracked", "Robust grid", "cracked", "Robust advantage for attacker")
		for _, r := range attack.Figure8Rs {
			centered, err := core.NewCentered(2*r + 1)
			if err != nil {
				log.Fatal(err)
			}
			robust, err := core.NewRobust2D(6*r, core.MostCentered, seed)
			if err != nil {
				log.Fatal(err)
			}
			cRes, err := attack.OfflineKnownGrids(field, dict, centered, 0)
			if err != nil {
				log.Fatal(err)
			}
			rRes, err := attack.OfflineKnownGrids(field, dict, robust, 0)
			if err != nil {
				log.Fatal(err)
			}
			advantage := "n/a"
			if cRes.Cracked > 0 {
				advantage = fmt.Sprintf("%.1fx", float64(rRes.Cracked)/float64(cRes.Cracked))
			}
			tb.AddRowf(
				fmt.Sprintf("±%dpx", r),
				fmt.Sprintf("%dx%d", 2*r+1, 2*r+1),
				fmt.Sprintf("%d (%.1f%%)", cRes.Cracked, cRes.CrackedPct()),
				fmt.Sprintf("%dx%d", 6*r, 6*r),
				fmt.Sprintf("%d (%.1f%%)", rRes.Cracked, rRes.CrackedPct()),
				advantage,
			)
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("equal usability (same guaranteed tolerance) costs Robust Discretization dearly:")
	fmt.Println("its 6r squares hand the attacker a far coarser target than Centered's 2r+1 squares.")
}

package replay_test

import (
	"sync"
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/replay"
	"clickpass/internal/study"
)

func fieldDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	d, err := study.Run(study.FieldConfig(imagegen.Cars(), 9))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newScheme(t testing.TB, mk func() (core.Scheme, error)) core.Scheme {
	t.Helper()
	s, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSetMatchesDirectReplay: Accepts must agree with the naive
// enroll-then-match loop for every login of a real dataset, under both
// schemes.
func TestSetMatchesDirectReplay(t *testing.T) {
	d := fieldDataset(t)
	schemes := []core.Scheme{
		newScheme(t, func() (core.Scheme, error) { return core.NewCentered(13) }),
		newScheme(t, func() (core.Scheme, error) { return core.NewRobust2D(36, core.MostCentered, 5) }),
	}
	for _, scheme := range schemes {
		set := replay.Compile(d, scheme)
		if set.Len() != len(d.Passwords) {
			t.Fatalf("%s: Len = %d, want %d", scheme.Name(), set.Len(), len(d.Passwords))
		}
		for i := range d.Logins {
			l := &d.Logins[i]
			pts := l.Points()
			got, err := set.AcceptsID(l.PasswordID, pts)
			if err != nil {
				t.Fatal(err)
			}
			if viaClicks, err := set.AcceptsLogin(l.PasswordID, l.Clicks); err != nil || viaClicks != got {
				t.Fatalf("%s login %d: AcceptsLogin = %v, %v; AcceptsID = %v",
					scheme.Name(), i, viaClicks, err, got)
			}
			pw := d.PasswordByID(l.PasswordID)
			want := true
			for j, pt := range pts {
				if !core.Accepts(scheme, scheme.Enroll(pw.Clicks[j].Point()), pt) {
					want = false
					break
				}
			}
			// Re-enrolling must be legal for this cross-check: both
			// schemes here are deterministic (no RandomSafe).
			if got != want {
				t.Fatalf("%s login %d: Accepts = %v, want %v", scheme.Name(), i, got, want)
			}
		}
	}
}

// TestSetTokensMatchEnrollment: the flattened storage must hand back
// exactly the tokens a per-password enrollment produces, keyed both by
// ordinal and by dataset ID.
func TestSetTokensMatchEnrollment(t *testing.T) {
	d := fieldDataset(t)
	scheme := newScheme(t, func() (core.Scheme, error) { return core.NewCentered(19) })
	set := replay.Compile(d, scheme)
	for i := range d.Passwords {
		p := &d.Passwords[i]
		ord, ok := set.Ordinal(p.ID)
		if !ok || ord != i {
			t.Fatalf("Ordinal(%d) = %d, %v, want %d, true", p.ID, ord, ok, i)
		}
		tokens := set.Tokens(i)
		if len(tokens) != len(p.Clicks) {
			t.Fatalf("password %d: %d tokens, want %d", p.ID, len(tokens), len(p.Clicks))
		}
		for j := range tokens {
			if tokens[j] != scheme.Enroll(p.Clicks[j].Point()) {
				t.Fatalf("password %d click %d: token mismatch", p.ID, j)
			}
		}
	}
	if _, err := set.AcceptsID(-99, nil); err == nil {
		t.Error("AcceptsID accepted an unknown password ID")
	}
}

// TestSetRecompileReuses: a Set is reusable across Compiles (the
// Hasher buffer pattern) and must behave like a fresh one afterwards.
func TestSetRecompileReuses(t *testing.T) {
	d := fieldDataset(t)
	scheme := newScheme(t, func() (core.Scheme, error) { return core.NewCentered(13) })
	var set replay.Set
	set.Compile(d, scheme)
	fresh := replay.Compile(d, scheme)
	// Recompile under a different scheme, then back: same verdicts as a
	// fresh Set on every login.
	other := newScheme(t, func() (core.Scheme, error) { return core.NewRobust2D(36, core.MostCentered, 5) })
	set.Compile(d, other)
	set.Compile(d, scheme)
	for i := range d.Logins {
		l := &d.Logins[i]
		got, err := set.AcceptsID(l.PasswordID, l.Points())
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.AcceptsID(l.PasswordID, l.Points())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("login %d: recompiled Set disagrees with fresh Set", i)
		}
	}
}

// TestSetPointsCompile: CompilePoints covers guess lists — no IDs, and
// a length-mismatched candidate is a rejection, not a panic.
func TestSetPointsCompile(t *testing.T) {
	scheme := newScheme(t, func() (core.Scheme, error) { return core.NewCentered(13) })
	pws := [][]geom.Point{
		{geom.Pt(10, 10), geom.Pt(100, 100)},
		{geom.Pt(50, 60), geom.Pt(200, 210), geom.Pt(300, 12)},
	}
	set := replay.CompilePoints(pws, scheme)
	if set.Len() != 2 {
		t.Fatalf("Len = %d, want 2", set.Len())
	}
	for i, pts := range pws {
		if !set.Accepts(i, pts) {
			t.Errorf("password %d rejects its own clicks", i)
		}
	}
	if set.Accepts(0, pws[1]) {
		t.Error("length-mismatched candidate accepted")
	}
	if _, ok := set.Ordinal(0); ok {
		t.Error("point-compiled Set resolved a dataset ID")
	}
}

// TestSetSharedAcrossGoroutines is the -race stress for the replay
// layer's central claim: one compiled Set may be hammered by many
// concurrent matchers with no synchronization. Run under -race; every
// goroutine must also reach the same tally.
func TestSetSharedAcrossGoroutines(t *testing.T) {
	d := fieldDataset(t)
	scheme := newScheme(t, func() (core.Scheme, error) { return core.NewRobust2D(36, core.MostCentered, 5) })
	set := replay.Compile(d, scheme)
	const goroutines = 16
	tallies := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range d.Logins {
				l := &d.Logins[i]
				ok, err := set.AcceptsID(l.PasswordID, l.Points())
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					tallies[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if tallies[g] != tallies[0] {
			t.Fatalf("goroutine %d accepted %d logins, goroutine 0 accepted %d",
				g, tallies[g], tallies[0])
		}
	}
	if tallies[0] == 0 {
		t.Fatal("stress replay accepted no logins — dataset or scheme misconfigured")
	}
}

package authproto

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// shardedServer is testServer backed by the sharded store instead of
// the single-lock vault.
func shardedServer(t *testing.T, lockout int) *Server {
	t.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
	s, err := NewServer(cfg, vault.NewSharded(0), lockout)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedStoreEndToEnd: the server must behave identically over
// the sharded store — enroll, login, lockout — through real TCP.
func TestShardedStoreEndToEnd(t *testing.T) {
	s := shardedServer(t, 3)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l) }()

	c, err := Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Enroll("iris", clicks(0)); err != nil || !resp.OK {
		t.Fatalf("enroll: %+v %v", resp, err)
	}
	if resp, err := c.Login("iris", clicks(3)); err != nil || !resp.OK {
		t.Fatalf("login: %+v %v", resp, err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Login("iris", clicks(12)); err != nil {
			t.Fatal(err)
		}
	}
	if resp, err := c.Login("iris", clicks(0)); err != nil || !resp.Locked {
		t.Fatalf("lockout over sharded store: %+v %v", resp, err)
	}
}

// TestGracefulShutdownDrains: Shutdown must let an in-flight request
// finish and write its response, refuse new connections, and return
// once everything has drained.
func TestGracefulShutdownDrains(t *testing.T) {
	s := testServer(t, 10)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { _ = s.Serve(l); close(serveDone) }()

	// A connected client with traffic in flight while Shutdown runs.
	c, err := Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	var pinged atomic.Int64
	reqDone := make(chan error, 1)
	go func() {
		// Hammer requests so Shutdown overlaps an active request with
		// high probability; the client stops at the first error (the
		// server closing the drained connection).
		for {
			if err := c.Ping(); err != nil {
				reqDone <- nil
				return
			}
			pinged.Add(1)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let some requests through

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-reqDone
	if pinged.Load() == 0 {
		t.Error("no request completed before shutdown — test raced itself")
	}
	// Serve must have returned (listener closed, conns drained).
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// New connections are refused: dial fails, or a dialed conn gets no
	// service and dies immediately.
	if c2, err := Dial(l.Addr().String(), 200*time.Millisecond); err == nil {
		if err := c2.Ping(); err == nil {
			t.Error("server answered a ping after Shutdown returned")
		}
		c2.Close()
	}
}

// TestShutdownWaitsForMidFrameRequest: a request whose length prefix
// has arrived but whose body is still in flight when Shutdown begins
// must be read, handled, and answered — only *idle* connections may be
// nudged off their deadline.
func TestShutdownWaitsForMidFrameRequest(t *testing.T) {
	s := testServer(t, 10)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	body, err := json.Marshal(Request{Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := conn.Write(prefix[:]); err != nil {
		t.Fatal(err)
	}
	// Let the server consume the prefix (leaving idle phase), then
	// start draining while the body is still unsent.
	time.Sleep(30 * time.Millisecond)
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // shutdown is now nudging idle conns
	if _, err := conn.Write(body); err != nil {
		t.Fatalf("writing late body: %v", err)
	}
	var resp Response
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if err := readFrame(conn, &resp); err != nil {
		t.Fatalf("mid-frame request was dropped by shutdown: %v", err)
	}
	if !resp.OK {
		t.Fatalf("mid-frame ping refused: %+v", resp)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestServeAfterShutdownRefused: Serve on an already-shut-down server
// must return ErrServerClosed instead of accepting (and silently
// dropping) connections forever.
func TestServeAfterShutdownRefused(t *testing.T) {
	s := testServer(t, 10)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := s.Serve(l); err != ErrServerClosed {
		t.Fatalf("Serve after Shutdown = %v, want ErrServerClosed", err)
	}
}

// TestShutdownClosesIdleConnections: a connection parked between
// requests must not hold Shutdown hostage for IdleTimeout.
func TestShutdownClosesIdleConnections(t *testing.T) {
	s := testServer(t, 10)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(l) }()
	c, err := Dial(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// The connection now sits idle. Shutdown must still return fast.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with idle conn: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("Shutdown took %v with one idle connection", d)
	}
}

// TestShutdownDeadlineExpires: a context that expires mid-drain must
// surface ctx.Err and hard-close what remains.
func TestShutdownDeadlineExpires(t *testing.T) {
	s := testServer(t, 10)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(l) }()
	// A raw dialed conn that never speaks the protocol: the server's
	// reader is parked; the shutdown nudge terminates it quickly, so to
	// force a deadline miss we use an already-expired context.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(10 * time.Millisecond) // let the server admit the conn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.Shutdown(ctx)
	if err != nil && err != context.Canceled {
		t.Fatalf("Shutdown = %v, want nil or context.Canceled", err)
	}
}

// TestServe256ConcurrentBounded is the acceptance load point: 256
// concurrent connections against a bounded worker pool, every client
// getting correct answers, race-clean under -race. The pool is set
// below the client count so the backlog path (Acquire blocking the
// accept loop) is exercised, not just the happy path.
func TestServe256ConcurrentBounded(t *testing.T) {
	const clients = 256
	for _, tc := range []struct {
		name     string
		maxConns int
		store    vault.Store
	}{
		{"sharded-pool64", 64, vault.NewSharded(0)},
		{"vault-pool256", 256, vault.New()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			scheme, err := core.NewCentered(13)
			if err != nil {
				t.Fatal(err)
			}
			cfg := passpoints.Config{
				Image: geom.Size{W: 451, H: 331}, Clicks: 5, Scheme: scheme, Iterations: 2,
			}
			s, err := NewServer(cfg, tc.store, 1000)
			if err != nil {
				t.Fatal(err)
			}
			s.SetMaxConns(tc.maxConns)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan struct{})
			go func() { _ = s.Serve(l); close(serveDone) }()

			ops := 4
			if testing.Short() {
				ops = 2
			}
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c, err := Dial(l.Addr().String(), 10*time.Second)
					if err != nil {
						errs <- fmt.Errorf("client %d dial: %w", w, err)
						return
					}
					defer c.Close()
					user := fmt.Sprintf("swarm-%d", w)
					if resp, err := c.Enroll(user, clicks(w%40)); err != nil || !resp.OK {
						errs <- fmt.Errorf("client %d enroll: %+v %v", w, resp, err)
						return
					}
					for i := 0; i < ops; i++ {
						resp, err := c.Login(user, clicks(w%40+3))
						if err != nil || !resp.OK {
							errs <- fmt.Errorf("client %d login %d: %+v %v", w, i, resp, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if n := tc.store.Len(); n != clients {
				t.Errorf("store holds %d records, want %d", n, clients)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown after load: %v", err)
			}
			select {
			case <-serveDone:
			case <-time.After(2 * time.Second):
				t.Error("Serve did not return after load + Shutdown")
			}
		})
	}
}

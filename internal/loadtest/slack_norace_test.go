//go:build !race

package loadtest

// raceSlack is 1 without the race detector: the storm smoke asserts
// its tight latency bounds (see slack_race_test.go).
const raceSlack = 1

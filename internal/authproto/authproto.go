// Package authproto exposes a PassPoints vault over the network: a
// length-prefixed JSON protocol on TCP and an equivalent net/http
// API. It also enforces the per-account failed-attempt lockout that
// §5.1 identifies as the defense against online dictionary attacks.
//
// Wire format (TCP): each message is a 4-byte big-endian length
// followed by a JSON document, request/response in lockstep on one
// connection. Frames are capped at MaxFrame to bound allocation from
// untrusted peers.
package authproto

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/par"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// MaxFrame is the largest accepted wire frame in bytes.
const MaxFrame = 1 << 20

// DefaultLockout is the failed-attempt budget per account.
const DefaultLockout = 10

// DefaultMaxConns bounds concurrently served connections per Serve
// loop when the caller does not set a limit. Beyond it, accepted
// connections wait in the kernel backlog instead of each getting a
// goroutine — load sheds by queueing, not by unbounded spawning.
const DefaultMaxConns = 1024

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpPing   Op = "ping"
	OpEnroll Op = "enroll"
	OpLogin  Op = "login"
	OpChange Op = "change" // replace the password after verifying the old one
	OpReset  Op = "reset"  // administrative: clear an account's lockout
)

// Request is a client request.
type Request struct {
	Op     Op              `json:"op"`
	User   string          `json:"user,omitempty"`
	Clicks []dataset.Click `json:"clicks,omitempty"`
	// NewClicks carries the replacement password for OpChange.
	NewClicks []dataset.Click `json:"new_clicks,omitempty"`
}

// Response is a server reply.
type Response struct {
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	Locked    bool   `json:"locked,omitempty"`
	Remaining int    `json:"remaining,omitempty"` // login attempts left
}

// Server authenticates PassPoints passwords against a vault.Store. It
// is safe for concurrent use: each accepted connection is dispatched
// to a bounded worker pool (par.Limiter), so a flood of clients queues
// in the listen backlog instead of exhausting goroutines, and Shutdown
// drains in-flight connections gracefully.
type Server struct {
	cfg      passpoints.Config
	vault    vault.Store
	lockout  int
	maxConns int

	mu       sync.Mutex
	failures map[string]int

	connMu     sync.Mutex
	conns      map[net.Conn]*connState
	listeners  map[net.Listener]struct{}
	inShutdown atomic.Bool
}

// NewServer validates the configuration and returns a server. lockout
// <= 0 selects DefaultLockout. The store may be any vault.Store — the
// single-lock file vault or the sharded store.
func NewServer(cfg passpoints.Config, v vault.Store, lockout int) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if v == nil {
		return nil, fmt.Errorf("authproto: nil vault")
	}
	if lockout <= 0 {
		lockout = DefaultLockout
	}
	return &Server{
		cfg:       cfg,
		vault:     v,
		lockout:   lockout,
		maxConns:  DefaultMaxConns,
		failures:  make(map[string]int),
		conns:     make(map[net.Conn]*connState),
		listeners: make(map[net.Listener]struct{}),
	}, nil
}

// SetMaxConns bounds the connections served concurrently by each
// subsequent Serve call (n <= 0 restores DefaultMaxConns). Call before
// Serve; the limit is read once when the accept loop starts.
func (s *Server) SetMaxConns(n int) {
	if n <= 0 {
		n = DefaultMaxConns
	}
	s.maxConns = n
}

// Handle executes one request. This is the transport-independent core
// used by both the TCP and HTTP front ends.
func (s *Server) Handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpEnroll:
		return s.enroll(req)
	case OpLogin:
		return s.login(req)
	case OpChange:
		return s.change(req)
	case OpReset:
		s.mu.Lock()
		delete(s.failures, req.User)
		s.mu.Unlock()
		return Response{OK: true}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) enroll(req Request) Response {
	if req.User == "" {
		return Response{Error: "user required"}
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.Clicks))
	if err != nil {
		return Response{Error: err.Error()}
	}
	if err := s.vault.Put(rec); err != nil {
		if errors.Is(err, vault.ErrExists) {
			return Response{Error: "user already enrolled"}
		}
		return Response{Error: err.Error()}
	}
	return Response{OK: true}
}

func (s *Server) login(req Request) Response {
	if req.User == "" {
		return Response{Error: "user required"}
	}
	s.mu.Lock()
	failed := s.failures[req.User]
	s.mu.Unlock()
	if failed >= s.lockout {
		return Response{Locked: true, Error: "account locked"}
	}
	rec, err := s.vault.Get(req.User)
	if err != nil {
		// Indistinguishable from a wrong password, to avoid user
		// enumeration; still consumes an attempt for this name.
		return s.fail(req.User)
	}
	ok, err := passpoints.Verify(s.cfg, rec, clicksToPoints(req.Clicks))
	if err != nil || !ok {
		return s.fail(req.User)
	}
	s.mu.Lock()
	delete(s.failures, req.User)
	s.mu.Unlock()
	return Response{OK: true, Remaining: s.lockout}
}

// change replaces an account's password after verifying the old one.
// Failed old-password checks consume lockout attempts exactly like
// failed logins, so change cannot be used to bypass rate limiting.
func (s *Server) change(req Request) Response {
	resp := s.login(Request{Op: OpLogin, User: req.User, Clicks: req.Clicks})
	if !resp.OK {
		return resp
	}
	rec, err := passpoints.Enroll(s.cfg, req.User, clicksToPoints(req.NewClicks))
	if err != nil {
		return Response{Error: err.Error()}
	}
	if err := s.vault.Replace(rec); err != nil {
		return Response{Error: err.Error()}
	}
	return Response{OK: true}
}

func (s *Server) fail(user string) Response {
	s.mu.Lock()
	s.failures[user]++
	remaining := s.lockout - s.failures[user]
	s.mu.Unlock()
	if remaining <= 0 {
		return Response{Locked: true, Error: "account locked"}
	}
	return Response{Error: "login failed", Remaining: remaining}
}

func clicksToPoints(clicks []dataset.Click) []geom.Point {
	pts := make([]geom.Point, len(clicks))
	for i, c := range clicks {
		pts[i] = c.Point()
	}
	return pts
}

// ErrServerClosed is returned by Serve on a server whose Shutdown has
// been initiated — the analogue of http.ErrServerClosed. A Serve loop
// already running when Shutdown begins still returns nil once its
// listener closes and its connections drain.
var ErrServerClosed = errors.New("authproto: server closed")

// Serve accepts connections until the listener is closed, dispatching
// each one to a bounded worker pool of at most SetMaxConns concurrent
// handlers. Each connection carries a sequence of request/response
// frames. Serve returns only after every admitted connection has
// drained. Closing the listener alone stops admission but lets idle
// peers park until IdleTimeout expires; call Shutdown for a prompt
// drain — it also closes the listener, and additionally nudges idle
// connections so Serve returns within milliseconds of the last
// in-flight request.
func (s *Server) Serve(l net.Listener) error {
	// Registration and the shutdown flag are checked under one lock, so
	// a Serve racing a Shutdown either registers in time to have its
	// listener closed, or is refused — never left accepting on a port
	// Shutdown no longer knows about.
	if !s.registerListener(l) {
		return ErrServerClosed
	}
	defer s.unregisterListener(l)
	lim := par.NewLimiter(s.maxConns)
	defer lim.Drain()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		// Track before the shutdown check: once a connection is in
		// s.conns, Shutdown cannot report "drained" without either
		// waiting for it or (below) seeing it refused. The flag is read
		// after tracking, so every ordering lands in one of those two
		// cases.
		st := &connState{}
		s.trackConn(conn, st)
		if s.inShutdown.Load() {
			s.untrackConn(conn)
			conn.Close()
			// A Shutdown is in flight: stop accepting and close the
			// listener ourselves — the deferred unregister could
			// otherwise race ahead of Shutdown's close loop and leave
			// the port open with nobody accepting. This is a loop that
			// was running when Shutdown began, so it returns nil like
			// any other cleanly shut-down Serve.
			_ = l.Close()
			return nil
		}
		// Acquire blocks when maxConns handlers are in flight; further
		// peers wait in the accept queue — bounded workers, kernel-side
		// backpressure. The worker owns the conn's tracking lifetime;
		// serveConnState itself does none (it can be driven directly
		// over a net.Pipe in tests).
		lim.Go(func() {
			defer s.untrackConn(conn)
			s.serveConnState(conn, st)
		})
	}
}

// Shutdown gracefully stops the server: new connections are refused,
// idle connections are closed, and in-flight requests get to finish
// and write their response before their connection is torn down. It
// returns nil once every connection has drained, or ctx.Err() if the
// context expires first (remaining connections are then closed hard).
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.connMu.Lock()
	for l := range s.listeners {
		_ = l.Close()
	}
	s.connMu.Unlock()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.connMu.Lock()
		n := len(s.conns)
		// Nudge blocked readers — but only connections parked *between*
		// requests (waiting for a frame's length prefix). A connection
		// mid-frame or mid-handler keeps its deadline and finishes its
		// request/response exchange, honoring the drain contract.
		// Re-arm every tick in case a handler re-parked after a late
		// response (serveConnState exits on the shutdown flag, so this
		// is belt and braces).
		for c, st := range s.conns {
			st.nudgeIfIdle(c)
		}
		s.connMu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.connMu.Lock()
			for c := range s.conns {
				_ = c.Close()
			}
			s.connMu.Unlock()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// registerListener adds l to the shutdown-controlled set; it refuses
// (returns false) on a server whose Shutdown has begun. The flag is
// read under connMu — the same lock Shutdown holds while closing
// listeners — so registration and shutdown cannot interleave.
func (s *Server) registerListener(l net.Listener) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.inShutdown.Load() {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) unregisterListener(l net.Listener) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.listeners, l)
}

func (s *Server) trackConn(c net.Conn, st *connState) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.conns[c] = st
}

func (s *Server) untrackConn(c net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, c)
}

// IdleTimeout is how long a connection may sit between requests.
const IdleTimeout = 2 * time.Minute

// bodyTimeout bounds reading one frame's body once its length prefix
// has arrived — generous for a slow link pushing a MaxFrame payload,
// small enough that a stalled peer cannot pin a drain for long (a
// Shutdown past its context hard-closes regardless).
const bodyTimeout = 30 * time.Second

// connState is the per-connection handshake between the serving loop
// and Shutdown's nudger: idle means "parked waiting for the next
// request's length prefix", the only phase a drain may interrupt. The
// mutex makes phase transitions and deadline writes atomic, so a
// nudge can never clobber the fresh deadline of a connection that
// just started a frame body.
type connState struct {
	mu   sync.Mutex
	idle bool
}

// park enters the idle phase under the idle deadline.
func (st *connState) park(conn net.Conn) {
	st.mu.Lock()
	st.idle = true
	_ = conn.SetReadDeadline(time.Now().Add(IdleTimeout))
	st.mu.Unlock()
}

// resume leaves the idle phase and arms the body deadline.
func (st *connState) resume(conn net.Conn) {
	st.mu.Lock()
	st.idle = false
	_ = conn.SetReadDeadline(time.Now().Add(bodyTimeout))
	st.mu.Unlock()
}

// nudgeIfIdle expires the read deadline of a parked connection so its
// blocked prefix read fails immediately; mid-frame connections are
// left alone.
func (st *connState) nudgeIfIdle(conn net.Conn) {
	st.mu.Lock()
	if st.idle {
		_ = conn.SetReadDeadline(time.Now())
	}
	st.mu.Unlock()
}

// serveConn serves one connection with standalone state — the entry
// point for driving a connection outside a Serve accept loop (tests,
// net.Pipe).
func (s *Server) serveConn(conn net.Conn) {
	s.serveConnState(conn, &connState{})
}

func (s *Server) serveConnState(conn net.Conn, st *connState) {
	defer conn.Close()
	for {
		st.park(conn)
		n, err := readPrefix(conn)
		if err != nil {
			return // EOF, idle timeout, shutdown nudge, or bad size
		}
		st.resume(conn)
		var req Request
		if err := readBody(conn, n, &req); err != nil {
			return // timeout or malformed frame: drop the peer
		}
		resp := s.Handle(req)
		_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if err := writeFrame(conn, resp); err != nil {
			return
		}
		if s.inShutdown.Load() {
			return // drained: last response written, close gracefully
		}
	}
}

// readPrefix reads and validates a frame's 4-byte length prefix.
func readPrefix(r io.Reader) (uint32, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > MaxFrame {
		return 0, fmt.Errorf("authproto: frame size %d out of range", n)
	}
	return n, nil
}

// readBody reads an n-byte frame body and decodes it into v.
func readBody(r io.Reader, n uint32, v interface{}) error {
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

func readFrame(r io.Reader, v interface{}) error {
	n, err := readPrefix(r)
	if err != nil {
		return err
	}
	return readBody(r, n, v)
}

func writeFrame(w io.Writer, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("authproto: frame too large (%d bytes)", len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Client is a TCP client for the protocol. Not safe for concurrent
// use; requests are serialized on one connection.
type Client struct {
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("authproto: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (e.g. net.Pipe in tests).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Do sends one request and reads the reply.
func (c *Client) Do(req Request) (Response, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.Do(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("authproto: ping rejected: %s", resp.Error)
	}
	return nil
}

// Enroll registers a new password.
func (c *Client) Enroll(user string, clicks []dataset.Click) (Response, error) {
	return c.Do(Request{Op: OpEnroll, User: user, Clicks: clicks})
}

// Login attempts authentication.
func (c *Client) Login(user string, clicks []dataset.Click) (Response, error) {
	return c.Do(Request{Op: OpLogin, User: user, Clicks: clicks})
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

package authproto

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestSelfSignedCert(t *testing.T) {
	cert, err := SelfSignedCert([]string{"127.0.0.1", "localhost"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Certificate) != 1 {
		t.Fatalf("expected one DER block, got %d", len(cert.Certificate))
	}
	if _, err := SelfSignedCert(nil, time.Hour); err == nil {
		t.Error("empty host list accepted")
	}
}

func TestTLSEndToEnd(t *testing.T) {
	s := testServer(t, 10)
	cert, err := SelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.ServeTLS(l, cert) }()

	c, err := DialTLS(l.Addr().String(), 2*time.Second, cert.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Enroll("tina", clicks(0))
	if err != nil || !resp.OK {
		t.Fatalf("enroll over TLS: %+v, %v", resp, err)
	}
	resp, err = c.Login("tina", clicks(4))
	if err != nil || !resp.OK {
		t.Fatalf("login over TLS: %+v, %v", resp, err)
	}
}

func TestTLSRejectsUntrustedServer(t *testing.T) {
	s := testServer(t, 10)
	serverCert, err := SelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	otherCert, err := SelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.ServeTLS(l, serverCert) }()

	// Pinning a DIFFERENT certificate must fail the handshake.
	if _, err := DialTLS(l.Addr().String(), 2*time.Second, otherCert.Certificate[0]); err == nil {
		t.Fatal("client trusted a server signed by the wrong certificate")
	} else if !strings.Contains(err.Error(), "certificate") && !strings.Contains(err.Error(), "x509") {
		t.Logf("handshake failed as expected: %v", err)
	}
}

func TestDialTLSBadRoot(t *testing.T) {
	if _, err := DialTLS("127.0.0.1:1", time.Second, []byte("junk")); err == nil {
		t.Error("junk pinned root accepted")
	}
}

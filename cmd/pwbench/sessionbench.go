package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/session"
	"clickpass/internal/vault"
)

// The -session mode: record sign-once/verify-everywhere as data.
// Both paths run through the same middleware-chained handler a real
// front serves — OpValidate is answered by the session tier's
// signature check (warm verify cache, zero store calls) while OpLogin
// pays the full click-verify chain at the server's default 1000 hash
// iterations. The gap between the two rows IS the session tier's
// value proposition, so it is captured per commit next to the engine
// and store numbers and guarded by the same -diff gate.

// sessionUsers is the enrolled population the bench cycles through —
// enough to spread across vault shards and keep the verify cache
// honest (every user's token stays resident; see cacheShardCap).
const sessionUsers = 64

// sessionClicks derives a deterministic 5-click password per user.
func sessionClicks(seed int) []dataset.Click {
	out := make([]dataset.Click, 5)
	for i := range out {
		out[i] = dataset.Click{X: 20 + (seed*31+i*83)%400, Y: 15 + (seed*17+i*59)%300}
	}
	return out
}

// sessionHandler builds the serving handler both rows share: the real
// service over a sharded vault with the session middleware in front,
// plus one enrolled-and-logged-in token per user.
func sessionHandler() (authsvc.Handler, []string, error) {
	scheme, err := core.NewCentered(13)
	if err != nil {
		return nil, nil, err
	}
	cfg := passpoints.Config{
		Image:  geom.Size{W: 451, H: 331},
		Clicks: 5,
		Scheme: scheme,
		// The pwserver -iterations default: the login row must pay the
		// production hash-chain price the token row avoids.
		Iterations: 1000,
	}
	svc, err := authsvc.NewService(cfg, vault.NewSharded(0), 10)
	if err != nil {
		return nil, nil, err
	}
	mgr, err := session.New(session.Options{TTL: time.Hour})
	if err != nil {
		return nil, nil, err
	}
	h := authsvc.Chain(svc, authsvc.WithSession(mgr))
	ctx := context.Background()
	tokens := make([]string, sessionUsers)
	for i := range tokens {
		user := fmt.Sprintf("s-%d", i)
		if resp := h.Handle(ctx, authsvc.Request{Version: authsvc.Version, Op: authsvc.OpEnroll, User: user, Clicks: sessionClicks(i)}); resp.Code != authsvc.CodeOK {
			return nil, nil, fmt.Errorf("enroll %s: %+v", user, resp)
		}
		resp := h.Handle(ctx, authsvc.Request{Version: authsvc.Version, Op: authsvc.OpLogin, User: user, Clicks: sessionClicks(i)})
		if resp.Code != authsvc.CodeOK || resp.Token == "" {
			return nil, nil, fmt.Errorf("login %s returned no token: %+v", user, resp)
		}
		tokens[i] = resp.Token
	}
	return h, tokens, nil
}

// sessionOp runs one benchmark: b.N requests spread across `workers`
// goroutines, each goroutine walking the user population round-robin.
// ns/op is wall time per request across all workers, matching the
// store bench's put8 convention.
func sessionOp(workers int, req func(i int) authsvc.Request, want authsvc.Code, h authsvc.Handler) testing.BenchmarkResult {
	ctx := context.Background()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var wg sync.WaitGroup
		var fail atomic.Value
		for g := 0; g < workers; g++ {
			share := b.N / workers
			if g < b.N%workers {
				share++
			}
			wg.Add(1)
			go func(g, share int) {
				defer wg.Done()
				for i := 0; i < share; i++ {
					resp := h.Handle(ctx, req(g*share+i))
					if resp.Code != want {
						fail.Store(fmt.Errorf("got %q, want %q: %+v", resp.Code, want, resp))
						return
					}
				}
			}(g, share)
		}
		wg.Wait()
		if err, ok := fail.Load().(error); ok {
			b.Fatal(err)
		}
	})
}

// runSessionBench measures token validation against the full
// click-verify login at workers 1/2/4/8, writes BENCH_session.json
// into outDir, and prints a Markdown table.
func runSessionBench(outDir string, counts []int) error {
	h, tokens, err := sessionHandler()
	if err != nil {
		return err
	}
	bench := StoreBench{Name: "session", GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, w := range counts {
		r := sessionOp(w, func(i int) authsvc.Request {
			return authsvc.Request{Version: authsvc.Version, Op: authsvc.OpValidate, Token: tokens[i%sessionUsers]}
		}, authsvc.CodeOK, h)
		bench.Runs = append(bench.Runs, StoreRun{
			Backend: "validate", Op: fmt.Sprintf("w%d", w),
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
		r = sessionOp(w, func(i int) authsvc.Request {
			u := i % sessionUsers
			return authsvc.Request{Version: authsvc.Version, Op: authsvc.OpLogin, User: fmt.Sprintf("s-%d", u), Clicks: sessionClicks(u)}
		}, authsvc.CodeOK, h)
		bench.Runs = append(bench.Runs, StoreRun{
			Backend: "login", Op: fmt.Sprintf("w%d", w),
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "pwbench: measured session paths at workers=%d\n", w)
	}
	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	file := filepath.Join(outDir, "BENCH_session.json")
	if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pwbench: wrote %s\n", file)
	fmt.Print(sessionMarkdownTable(bench, counts))
	return nil
}

// sessionMarkdownTable renders the validate-vs-login comparison CI
// publishes, with the per-worker speedup of the token path.
func sessionMarkdownTable(bench StoreBench, counts []int) string {
	byKey := map[string]StoreRun{}
	for _, r := range bench.Runs {
		byKey[r.Backend+"/"+r.Op] = r
	}
	var b strings.Builder
	b.WriteString("| workers | validate ns/op | login ns/op | token speedup |\n|---|---|---|---|\n")
	for _, w := range counts {
		v := byKey[fmt.Sprintf("validate/w%d", w)]
		l := byKey[fmt.Sprintf("login/w%d", w)]
		speedup := 0.0
		if v.NsPerOp > 0 {
			speedup = l.NsPerOp / v.NsPerOp
		}
		fmt.Fprintf(&b, "| %d | %.0f | %.0f | %.0fx |\n", w, v.NsPerOp, l.NsPerOp, speedup)
	}
	return b.String()
}

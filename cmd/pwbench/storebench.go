package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

// StoreRun is one (backend, op) measurement in BENCH_store.json.
type StoreRun struct {
	Backend     string  `json:"backend"`
	Op          string  `json:"op"` // "readheavy" (10 Gets : 1 Replace), "put" (fresh-user writes), "put8" (8 concurrent writers, one log)
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// StoreBench is the BENCH_store.json document: the vault backends —
// including the durable store at every fsync policy — on the
// authentication front end's op mix, so the latency price of each
// durability level is recorded per commit next to the engine numbers.
type StoreBench struct {
	Name       string     `json:"name"`
	GoMaxProcs int        `json:"gomaxprocs"`
	NumCPU     int        `json:"numcpu"`
	Runs       []StoreRun `json:"runs"`
}

// storeBackend is one measured store: mk builds the default-sharded
// store the readheavy and put phases use; mkContended, when non-nil,
// builds the single-log variant the concurrent put8 phase uses (all
// writers on one shard — the contention group commit amortizes; a
// default-sharded store would spread 8 writers so thin the coalescing
// never engages). mk may return a cleanup func (durable stores must
// close their logs).
type storeBackend struct {
	name        string
	mk          func() (vault.Store, func(), error)
	mkContended func() (vault.Store, func(), error)
}

// storeBackends enumerates the measured stores.
func storeBackends(dir string) []storeBackend {
	durable := func(policy vault.SyncPolicy, shards int) func() (vault.Store, func(), error) {
		return func() (vault.Store, func(), error) {
			// A fresh directory per call: each measurement phase must
			// start from an empty store like the in-memory backends do,
			// not replay the previous phase's log.
			wal, err := os.MkdirTemp(dir, "wal-"+policy.String()+"-*")
			if err != nil {
				return nil, nil, err
			}
			d, err := vault.OpenDurable(wal, vault.DurableOptions{
				Sync:   policy,
				Shards: shards,
				// Compaction churn mid-measurement adds rename/unlink
				// noise unrelated to the append path under test.
				NoAutoCompact: shards == 1,
			})
			if err != nil {
				return nil, nil, err
			}
			return d, func() { d.Close() }, nil
		}
	}
	return []storeBackend{
		{"vault", func() (vault.Store, func(), error) { return vault.New(), func() {}, nil }, nil},
		{"sharded32", func() (vault.Store, func(), error) { return vault.NewSharded(32), func() {}, nil }, nil},
		{"durable-always", durable(vault.SyncAlways, 0), durable(vault.SyncAlways, 1)},
		{"durable-interval", durable(vault.SyncInterval, 0), durable(vault.SyncInterval, 1)},
		{"durable-never", durable(vault.SyncNever, 0), durable(vault.SyncNever, 1)},
	}
}

// storeRecords builds n records without real hashing (the bench
// measures the store, not the crypto).
func storeRecords(n int) []*passpoints.Record {
	recs := make([]*passpoints.Record, n)
	for i := range recs {
		recs[i] = &passpoints.Record{
			User: fmt.Sprintf("u-%d", i), Kind: passpoints.KindCentered,
			SquareSidePx: 13, Iterations: 2,
			Salt: []byte{1, 2, 3, 4}, Digest: []byte{5, 6, 7, 8},
		}
	}
	return recs
}

// runStoreBench measures every backend on the read-heavy mix and the
// pure-write path, writes BENCH_store.json into outDir, and prints a
// Markdown table.
func runStoreBench(outDir string) error {
	tmp, err := os.MkdirTemp("", "pwbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	const users = 1024
	bench := StoreBench{Name: "store", GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, backend := range storeBackends(tmp) {
		// readheavy: the auth mix — 10 Gets per Replace over a
		// pre-populated store.
		s, cleanup, err := backend.mk()
		if err != nil {
			return err
		}
		recs := storeRecords(users)
		for _, r := range recs {
			if err := s.Put(r); err != nil {
				cleanup()
				return err
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := recs[i%users]
				if i%10 == 9 {
					_ = s.Replace(rec)
				} else {
					if _, err := s.Get(rec.User); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		cleanup()
		bench.Runs = append(bench.Runs, StoreRun{
			Backend: backend.name, Op: "readheavy",
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})

		// put: fresh-user enrollment writes — the path an fsync policy
		// prices most directly.
		s, cleanup, err = backend.mk()
		if err != nil {
			return err
		}
		// seq is monotonic across benchmark rounds: testing.Benchmark
		// reruns the closure with growing b.N against the same store,
		// so user names must never repeat. Each Put gets its own
		// Record — stores keep the pointer, and the real enroll path
		// allocates one per user anyway.
		seq := 0
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seq++
				rec := &passpoints.Record{User: fmt.Sprintf("w-%d", seq),
					Kind: passpoints.KindCentered, SquareSidePx: 13,
					Iterations: 2, Salt: []byte{1, 2, 3, 4}, Digest: []byte{5, 6, 7, 8}}
				if err := s.Put(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
		cleanup()
		bench.Runs = append(bench.Runs, StoreRun{
			Backend: backend.name, Op: "put",
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})

		// put8: 8 goroutines writing fresh users into one contended log
		// (single shard for the durable stores). Under `-fsync always`
		// this is the group-commit case: concurrent appends coalesce
		// into one fsync, so ns/op here should beat the sequential put
		// row rather than match it. ns/op is wall time per op across
		// all writers.
		mk8 := backend.mkContended
		if mk8 == nil {
			mk8 = backend.mk
		}
		s, cleanup, err = mk8()
		if err != nil {
			return err
		}
		const putWriters = 8
		round := 0
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			round++ // user names must stay unique across b.N reruns
			var wg sync.WaitGroup
			var fail atomic.Value
			for g := 0; g < putWriters; g++ {
				share := b.N / putWriters
				if g < b.N%putWriters {
					share++
				}
				wg.Add(1)
				go func(g, share int) {
					defer wg.Done()
					for i := 0; i < share; i++ {
						rec := &passpoints.Record{User: fmt.Sprintf("c%d-%d-%d", g, round, i),
							Kind: passpoints.KindCentered, SquareSidePx: 13,
							Iterations: 2, Salt: []byte{1, 2, 3, 4}, Digest: []byte{5, 6, 7, 8}}
						if err := s.Put(rec); err != nil {
							fail.Store(err)
							return
						}
					}
				}(g, share)
			}
			wg.Wait()
			if err, ok := fail.Load().(error); ok {
				b.Fatal(err)
			}
		})
		cleanup()
		bench.Runs = append(bench.Runs, StoreRun{
			Backend: backend.name, Op: "put8",
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "pwbench: measured store backend %s\n", backend.name)
	}
	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	file := filepath.Join(outDir, "BENCH_store.json")
	if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pwbench: wrote %s\n", file)
	fmt.Print(storeMarkdownTable(bench))
	return nil
}

// storeMarkdownTable renders the backend comparison CI publishes.
func storeMarkdownTable(bench StoreBench) string {
	var b strings.Builder
	b.WriteString("| backend | readheavy ns/op | put ns/op | put8 ns/op |\n|---|---|---|---|\n")
	byKey := map[string]StoreRun{}
	var order []string
	for _, r := range bench.Runs {
		byKey[r.Backend+"/"+r.Op] = r
		if r.Op == "readheavy" {
			order = append(order, r.Backend)
		}
	}
	for _, name := range order {
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %.0f |\n",
			name, byKey[name+"/readheavy"].NsPerOp, byKey[name+"/put"].NsPerOp,
			byKey[name+"/put8"].NsPerOp)
	}
	return b.String()
}

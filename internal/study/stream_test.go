package study

import (
	"reflect"
	"runtime"
	"testing"

	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
)

// TestStreamMatchesRun re-collects the streaming path into a dataset
// and requires it to equal Run's materialized output exactly, at
// several worker counts. Together with the golden SHA tests (which pin
// Run/RunCohort, now thin shells over the streams), this locks the
// streamed bytes to the pre-streaming generation.
func TestStreamMatchesRun(t *testing.T) {
	img := imagegen.Cars()
	for _, w := range []int{1, 2, 8} {
		cfg := FieldConfig(img, 99)
		cfg.Workers = w
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := &dataset.Dataset{Image: img.Name, Width: img.Size.W, Height: img.Size.H}
		err = Stream(cfg, func(pw dataset.Password, logins []dataset.Login) error {
			got.Passwords = append(got.Passwords, pw)
			got.Logins = append(got.Logins, logins...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: streamed dataset differs from Run", w)
		}
	}
}

// TestRunCohortStreamMatchesRunCohort re-collects the streamed cohort
// and requires byte-identity with RunCohort — including the serially
// renumbered password IDs — at several worker counts.
func TestRunCohortStreamMatchesRunCohort(t *testing.T) {
	img := imagegen.Pool()
	for _, w := range []int{1, 2, 8} {
		cfg := DefaultCohort(img, 31)
		cfg.Workers = w
		want, err := RunCohort(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := &dataset.Dataset{Image: img.Name, Width: img.Size.W, Height: img.Size.H}
		lastIdx := -1
		err = RunCohortStream(cfg, func(p Participant) error {
			if p.Index != lastIdx+1 {
				t.Fatalf("participant %d emitted after %d", p.Index, lastIdx)
			}
			lastIdx = p.Index
			got.Passwords = append(got.Passwords, p.Passwords...)
			got.Logins = append(got.Logins, p.Logins...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if lastIdx != cfg.Participants-1 {
			t.Fatalf("streamed %d participants, want %d", lastIdx+1, cfg.Participants)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: streamed cohort differs from RunCohort", w)
		}
		for i := 1; i < len(got.Passwords); i++ {
			if got.Passwords[i].ID != got.Passwords[i-1].ID+1 {
				t.Fatalf("password IDs not sequential at %d: %d after %d",
					i, got.Passwords[i].ID, got.Passwords[i-1].ID)
			}
		}
	}
}

// heapLive returns the post-GC live heap — retained bytes, not
// allocation churn.
func heapLive() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestRunCohortStreamMemoryBudget is the O(workers)-memory regression
// gate: a large streamed cohort must retain less than heapBudget bytes
// beyond the baseline, while materializing the same cohort through
// RunCohort is shown to exceed that budget — so if streaming ever
// silently starts buffering whole cohorts again, this fails rather
// than just getting slower.
func TestRunCohortStreamMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-budget test generates a large cohort")
	}
	const heapBudget = 12 << 20 // bytes retained beyond baseline
	img := imagegen.Cars()
	cfg := DefaultCohort(img, 5)
	cfg.Participants = 10000

	base := heapLive()
	var participants, passwords, logins int
	if err := RunCohortStream(cfg, func(p Participant) error {
		participants++
		passwords += len(p.Passwords)
		logins += len(p.Logins)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	streamed := int64(heapLive()) - int64(base)
	if participants != cfg.Participants || passwords == 0 || logins == 0 {
		t.Fatalf("stream under-delivered: %d participants, %d passwords, %d logins",
			participants, passwords, logins)
	}
	if streamed >= heapBudget {
		t.Fatalf("streamed cohort retained %d bytes, budget %d", streamed, heapBudget)
	}

	base = heapLive()
	d, err := RunCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	materialized := int64(heapLive()) - int64(base)
	if materialized <= heapBudget {
		t.Fatalf("materialized cohort retained %d bytes — the %d budget no longer separates the paths; grow cfg.Participants",
			materialized, heapBudget)
	}
	t.Logf("retained: streamed %d bytes, materialized %d bytes (%d passwords, %d logins)",
		streamed, materialized, len(d.Passwords), len(d.Logins))
	runtime.KeepAlive(d)
}

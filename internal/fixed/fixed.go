// Package fixed provides exact sub-pixel integer arithmetic for
// discretization math.
//
// The paper's schemes need two awkward granularities:
//
//   - Centered Discretization adds 0.5 to the tolerance so an odd number
//     of pixels is centered on the click-point (r = 6.5 for a 13x13
//     square), i.e. half-pixel precision.
//   - Robust Discretization offsets its three grids by 2r = s/3 and
//     declares a point r-safe at distance r = s/6 from grid lines, i.e.
//     sixth-pixel precision for integer square sizes s.
//
// Both are exact in units of one sixth of a pixel. Working in these
// units removes every floating-point rounding question the original
// Robust Discretization paper left open ("how to deal with rounding when
// moving from real numbers to pixels"): all quantities below are int64
// counts of sixth-pixels.
package fixed

import (
	"fmt"
	"strconv"
	"strings"
)

// Scale is the number of sub-pixel units per pixel.
const Scale = 6

// Sub is a coordinate or length measured in sixth-pixel units.
type Sub int64

// FromPixels converts a whole-pixel quantity to sub-pixel units.
func FromPixels(px int) Sub { return Sub(px) * Scale }

// FromHalfPixels converts a quantity measured in half pixels (e.g. a
// tolerance of 6.5 pixels is 13 half pixels) to sub-pixel units.
func FromHalfPixels(hp int) Sub { return Sub(hp) * (Scale / 2) }

// Pixels returns the value in whole pixels, truncated toward negative
// infinity. Use only for display; computations should stay in Sub.
func (s Sub) Pixels() int { return int(FloorDiv(int64(s), Scale)) }

// Float returns the value in pixels as a float64. Display only.
func (s Sub) Float() float64 { return float64(s) / Scale }

// String formats the value in pixels, exactly, without trailing zeros.
func (s Sub) String() string {
	whole := FloorDiv(int64(s), Scale)
	rem := Mod(int64(s), Scale)
	if rem == 0 {
		return strconv.FormatInt(whole, 10)
	}
	// Exact decimal expansion of rem/6 does not exist for 1/6, 1/3...
	// so fall back to a fraction for non-half remainders.
	if rem == 3 {
		return fmt.Sprintf("%d.5", whole)
	}
	return fmt.Sprintf("%d+%d/6", whole, rem)
}

// FloorDiv returns floor(a/b) for b > 0. Unlike Go's native integer
// division it rounds toward negative infinity, matching the paper's
// floor semantics for segment indices of points left of the origin.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Mod returns a mod b in the Euclidean sense: the result is in [0, b)
// for b > 0 regardless of the sign of a. The paper's offset
// d = (x - r) mod 2r requires this convention so offsets are always
// non-negative.
func Mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// ParseTolerance parses a pixel tolerance that may have a .5 fractional
// part ("6", "6.5", "9.5") into sub-pixel units. It rejects any other
// fractional precision: the schemes are only defined at half-pixel
// granularity.
func ParseTolerance(s string) (Sub, error) {
	s = strings.TrimSpace(s)
	whole, frac, hasFrac := strings.Cut(s, ".")
	w, err := strconv.ParseInt(whole, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("fixed: bad tolerance %q: %w", s, err)
	}
	if w < 0 {
		return 0, fmt.Errorf("fixed: tolerance %q is negative", s)
	}
	v := Sub(w) * Scale
	if hasFrac {
		switch frac {
		case "0", "00", "":
		case "5", "50":
			v += Scale / 2
		default:
			return 0, fmt.Errorf("fixed: tolerance %q: only .0 and .5 fractions are representable", s)
		}
	}
	return v, nil
}

// IsWholePixels reports whether the value is a whole number of pixels.
func (s Sub) IsWholePixels() bool { return Mod(int64(s), Scale) == 0 }

// IsHalfPixels reports whether the value is a whole number of half
// pixels (e.g. 6.5px).
func (s Sub) IsHalfPixels() bool { return Mod(int64(s), Scale/2) == 0 }

// Abs returns the absolute value.
func (s Sub) Abs() Sub {
	if s < 0 {
		return -s
	}
	return s
}

// Min returns the smaller of a and b.
func Min(a, b Sub) Sub {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Sub) Sub {
	if a > b {
		return a
	}
	return b
}

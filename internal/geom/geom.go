// Package geom provides the small geometric vocabulary shared by the
// discretization schemes, the study simulator, and the attack engines:
// points, rectangles and the Chebyshev (L-infinity) metric that square
// tolerance regions induce.
package geom

import (
	"fmt"

	"clickpass/internal/fixed"
)

// Point is a 2-D location in sub-pixel units.
type Point struct {
	X, Y fixed.Sub
}

// Pt builds a Point from whole-pixel coordinates, the granularity at
// which clicks arrive from real input devices.
func Pt(xPx, yPx int) Point {
	return Point{fixed.FromPixels(xPx), fixed.FromPixels(yPx)}
}

// String formats the point in pixels.
func (p Point) String() string { return fmt.Sprintf("(%s,%s)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Chebyshev returns the L-infinity distance between p and q. A square
// tolerance of r around p accepts exactly the points with
// Chebyshev(p,q) <= r, which is why this is the paper's implicit metric.
func (p Point) Chebyshev(q Point) fixed.Sub {
	return fixed.Max((p.X - q.X).Abs(), (p.Y - q.Y).Abs())
}

// Size is an image extent in whole pixels (e.g. 451x331).
type Size struct {
	W, H int
}

// String formats the size as WxH.
func (s Size) String() string { return fmt.Sprintf("%dx%d", s.W, s.H) }

// Contains reports whether the whole-pixel point (x, y) lies inside the
// image: 0 <= x < W and 0 <= y < H.
func (s Size) Contains(p Point) bool {
	return p.X >= 0 && p.Y >= 0 &&
		p.X < fixed.FromPixels(s.W) && p.Y < fixed.FromPixels(s.H)
}

// Clamp moves p to the nearest point inside the image.
func (s Size) Clamp(p Point) Point {
	maxX := fixed.FromPixels(s.W) - fixed.FromPixels(1)
	maxY := fixed.FromPixels(s.H) - fixed.FromPixels(1)
	if p.X < 0 {
		p.X = 0
	} else if p.X > maxX {
		p.X = maxX
	}
	if p.Y < 0 {
		p.Y = 0
	} else if p.Y > maxY {
		p.Y = maxY
	}
	return p
}

// Rect is an axis-aligned, half-open rectangle [MinX,MaxX) x [MinY,MaxY)
// in sub-pixel units. Grid squares are Rects.
type Rect struct {
	MinX, MinY, MaxX, MaxY fixed.Sub
}

// RectAround returns the closed square tolerance region of radius r
// centered on p, represented half-open on the high side so that integer
// pixels at exactly +r with half-pixel r are included (the paper's
// "2r+1 pixels wide, centered" square).
func RectAround(p Point, r fixed.Sub) Rect {
	return Rect{p.X - r, p.Y - r, p.X + r, p.Y + r}
}

// Contains reports whether q lies within the rectangle. Containment is
// closed on the low edge and open on the high edge, matching the
// floor-based segment arithmetic of the discretization schemes.
func (rc Rect) Contains(q Point) bool {
	return q.X >= rc.MinX && q.X < rc.MaxX && q.Y >= rc.MinY && q.Y < rc.MaxY
}

// W returns the rectangle width.
func (rc Rect) W() fixed.Sub { return rc.MaxX - rc.MinX }

// H returns the rectangle height.
func (rc Rect) H() fixed.Sub { return rc.MaxY - rc.MinY }

// Center returns the rectangle midpoint.
func (rc Rect) Center() Point {
	return Point{(rc.MinX + rc.MaxX) / 2, (rc.MinY + rc.MaxY) / 2}
}

// Margin returns the Chebyshev distance from p to the nearest edge of
// the rectangle; negative if p is outside. This is the "how centered is
// the point" measure used by the optimal Robust grid-selection policy.
func (rc Rect) Margin(p Point) fixed.Sub {
	dx := fixed.Min(p.X-rc.MinX, rc.MaxX-p.X)
	dy := fixed.Min(p.Y-rc.MinY, rc.MaxY-p.Y)
	return fixed.Min(dx, dy)
}

// Intersect returns the intersection of two rectangles; empty
// rectangles have MaxX <= MinX or MaxY <= MinY.
func (rc Rect) Intersect(o Rect) Rect {
	return Rect{
		MinX: fixed.Max(rc.MinX, o.MinX),
		MinY: fixed.Max(rc.MinY, o.MinY),
		MaxX: fixed.Min(rc.MaxX, o.MaxX),
		MaxY: fixed.Min(rc.MaxY, o.MaxY),
	}
}

// Empty reports whether the rectangle contains no points.
func (rc Rect) Empty() bool { return rc.MaxX <= rc.MinX || rc.MaxY <= rc.MinY }

// Area returns the rectangle's area in square sub-pixel units, 0 if
// empty.
func (rc Rect) Area() int64 {
	if rc.Empty() {
		return 0
	}
	return int64(rc.W()) * int64(rc.H())
}

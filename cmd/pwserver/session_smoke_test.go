package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clickpass/internal/authsvc"
)

// TestSessionSmoke is the end-to-end session-tier drill the CI
// session-smoke job runs: build the real pwserver binary, start a
// quorum primary and a follower as separate processes, log in to get
// a signed token, validate it on BOTH nodes (the follower verifies
// with keys it adopted off the replication stream — it never talks to
// the primary), rotate the signing key through the admin endpoint,
// SIGKILL the primary and promote the follower, and assert the
// pre-rotation token still validates on the survivor (the one-
// generation overlap window crossed both a rotation and a failover).
// Then change the password on the survivor and assert the token is
// refused — revocation watermarks ride the same replicated side
// table as the keys.
func TestSessionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pwserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pwserver: %v\n%s", err, out)
	}
	var (
		pRepl  = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
		pAdmin = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
		fRepl  = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
		fAdmin = fmt.Sprintf("127.0.0.1:%d", pickPort(t))
	)
	ctx := context.Background()

	// Quorum primary: every OK mutation this test sees is fsynced on
	// the follower before the response. (The primary's very first
	// session key is written before the follower attaches — locally
	// durable, quorum-deferred — and reaches the follower in the
	// attach-time full sync.)
	pAddr, killPrimary := startPwserver(t, bin, filepath.Join(dir, "vault-a.d"),
		"-role", "primary", "-repl-listen", pRepl, "-repl-ack", "quorum", "-metrics", pAdmin)
	fAddr, killFollower := startPwserver(t, bin, filepath.Join(dir, "vault-b.d"),
		"-role", "follower", "-repl-primary", pRepl, "-repl-listen", fRepl,
		"-repl-ack", "async", "-metrics", fAdmin)
	defer killFollower()

	pc := dialT(t, pAddr)
	// The enroll doubles as the attach barrier: its quorum ack cannot
	// arrive until the follower is connected and streaming.
	if resp, err := pc.Do(ctx, authsvc.Request{Op: authsvc.OpEnroll, User: "s-user", Clicks: smokeClicks(3)}); err != nil || !resp.OK() {
		t.Fatalf("enroll: %+v %v", resp, err)
	}
	login, err := pc.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: "s-user", Clicks: smokeClicks(3)})
	if err != nil || !login.OK() || login.Token == "" {
		t.Fatalf("login returned no session token: %+v %v", login, err)
	}

	// The token validates on the primary, and — once the key frames
	// have streamed across — on the follower, which never contacts the
	// primary to answer.
	if resp, err := pc.Do(ctx, authsvc.Request{Op: authsvc.OpValidate, Token: login.Token}); err != nil || !resp.OK() || resp.User != "s-user" {
		t.Fatalf("validate on primary: %+v %v", resp, err)
	}
	fc := dialT(t, fAddr)
	waitValidate(t, fc, login.Token, "follower adopts replicated session key")

	// Rotate the signing key through the admin lever; the follower's
	// metrics must show the new generation (key replicated), and the
	// gen-1 token must keep validating everywhere (overlap window).
	rotate := postT(t, "http://"+pAdmin+"/v1/session/rotate")
	var rr struct {
		OK         bool   `json:"ok"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(rotate, &rr); err != nil || !rr.OK || rr.Generation != 2 {
		t.Fatalf("rotate response: %s (err=%v)", rotate, err)
	}
	waitMetric(t, pAdmin, "session_key_generation 2")
	waitMetric(t, fAdmin, "session_key_generation 2")
	if resp, err := pc.Do(ctx, authsvc.Request{Op: authsvc.OpValidate, Token: login.Token}); err != nil || !resp.OK() {
		t.Fatalf("validate on primary after rotation: %+v %v", resp, err)
	}
	waitValidate(t, fc, login.Token, "follower validates across rotation")

	pc.Close()
	killPrimary() // SIGKILL: no drain, no fence, no goodbye

	// Failover. The survivor reseeds its session state on promote and
	// the pre-rotation token still validates: signed state needed
	// nothing from the dead node.
	promote := postT(t, "http://"+fAdmin+"/v1/promote")
	var pr struct {
		OK    bool   `json:"ok"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(promote, &pr); err != nil || !pr.OK || pr.Epoch == 0 {
		t.Fatalf("promote response: %s (err=%v)", promote, err)
	}
	if resp, err := fc.Do(ctx, authsvc.Request{Op: authsvc.OpValidate, Token: login.Token}); err != nil || !resp.OK() || resp.User != "s-user" {
		t.Fatalf("validate on survivor after failover: %+v %v", resp, err)
	}

	// Password change on the survivor revokes the outstanding session;
	// the revocation is effective locally before it is ever shipped.
	if resp, err := fc.Do(ctx, authsvc.Request{Op: authsvc.OpChange, User: "s-user", Clicks: smokeClicks(3), NewClicks: smokeClicks(8)}); err != nil || !resp.OK() {
		t.Fatalf("change on survivor: %+v %v", resp, err)
	}
	if resp, err := fc.Do(ctx, authsvc.Request{Op: authsvc.OpValidate, Token: login.Token}); err != nil || resp.Code != authsvc.CodeDenied {
		t.Fatalf("revoked token accepted on survivor: %+v %v", resp, err)
	}
	// And life goes on: a fresh login under the new password mints a
	// token the survivor trusts.
	login2, err := fc.Do(ctx, authsvc.Request{Op: authsvc.OpLogin, User: "s-user", Clicks: smokeClicks(8)})
	if err != nil || !login2.OK() || login2.Token == "" {
		t.Fatalf("post-failover login: %+v %v", login2, err)
	}
	if resp, err := fc.Do(ctx, authsvc.Request{Op: authsvc.OpValidate, Token: login2.Token}); err != nil || !resp.OK() {
		t.Fatalf("validate fresh token on survivor: %+v %v", resp, err)
	}
	fc.Close()
}

// waitValidate polls OpValidate until the token is accepted —
// replication is asynchronous from the client's point of view, so
// key adoption on the follower is awaited, not assumed.
func waitValidate(t *testing.T, c authsvc.Client, token, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c.Do(context.Background(), authsvc.Request{Op: authsvc.OpValidate, Token: token})
		if err == nil && resp.OK() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: token never validated: %+v %v", what, resp, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitMetric polls an admin /metrics page until want appears.
func waitMetric(t *testing.T, admin, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + admin + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(body), want) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s /metrics never showed %q", admin, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// postT POSTs to url with retries (admin listeners come up just
// after the banner) and returns the response body.
func postT(t *testing.T, url string) []byte {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(url, "application/json", nil)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return body
			}
			t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("POST %s: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Threed: the paper's §3.2 extension — Centered Discretization in
// three dimensions. 3-D graphical password schemes of the time limited
// users to predefined clickable objects; per-axis centered
// discretization lets a user pick ANY point in a 3-D scene and still
// log in with approximately-correct re-entries, enlarging the password
// space enormously.
package main

import (
	"fmt"
	"log"
	"math"

	"clickpass/internal/core"
	"clickpass/internal/fixed"
)

func main() {
	// A 512x512x256-unit scene; tolerance ±4.5 units per axis.
	const toleranceHalfUnits = 9 // 4.5 units in half-unit steps
	scheme := core.CenteredND{R: fixed.FromHalfPixels(toleranceHalfUnits), Dims: 3}
	if err := scheme.Validate(); err != nil {
		log.Fatal(err)
	}

	// The "password": three selected points in the scene (a corner of
	// a desk, a lamp, a doorknob). One coordinate triple per point.
	password := [][]fixed.Sub{
		{fixed.FromPixels(120), fixed.FromPixels(305), fixed.FromPixels(64)},
		{fixed.FromPixels(402), fixed.FromPixels(77), fixed.FromPixels(130)},
		{fixed.FromPixels(256), fixed.FromPixels(256), fixed.FromPixels(32)},
	}

	type enrolled struct {
		idx []int64
		off []fixed.Sub
	}
	var stored []enrolled
	for _, p := range password {
		idx, off := scheme.Discretize(p)
		stored = append(stored, enrolled{idx: idx, off: off})
	}
	fmt.Println("enrolled a 3-point password in a 3-D scene (tolerance ±4.5 units per axis)")

	verify := func(label string, jitter []int) {
		okAll := true
		for i, p := range password {
			cand := make([]fixed.Sub, len(p))
			for k := range p {
				cand[k] = p[k] + fixed.FromPixels(jitter[k])
			}
			if !scheme.Accepts(stored[i].idx, stored[i].off, cand) {
				okAll = false
			}
		}
		fmt.Printf("  %-30s -> %s\n", label, map[bool]string{true: "ACCEPTED", false: "rejected"}[okAll])
	}
	verify("exact re-entry", []int{0, 0, 0})
	verify("4 units off on every axis", []int{4, -4, 4})
	verify("5 units off on one axis", []int{0, 5, 0})

	// Password space: (scene cells)^points, cells of (2r)^3.
	cells := math.Floor(512.0/9) * math.Floor(512.0/9) * math.Floor(256.0/9)
	bits := 3 * math.Log2(cells)
	fmt.Printf("\n3 points over ~%.0f cells of 9x9x9 units: ~%.0f-bit theoretical space\n", cells, bits)
	fmt.Println("(clicking predefined objects instead — say 50 of them — gives only",
		fmt.Sprintf("%.1f bits)", 3*math.Log2(50)))

	// Robust Discretization generalizes too, but needs n+1 = 4 grids
	// and hypercubes of side 8r — the usability/space trade-off gets
	// worse with dimension.
	robust, err := core.NewRobust(fixed.FromHalfPixels(toleranceHalfUnits), 3, core.MostCentered, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRobust in 3-D would need %d offset grids with cubes of side %s units (vs %s for Centered)\n",
		robust.GridCount(), robust.Side(), fixed.FromHalfPixels(2*toleranceHalfUnits))
}

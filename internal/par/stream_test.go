package par

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// square is a trivial prepare for tests that need no serial state.
func square(i int) func() (int, error) {
	return func() (int, error) { return i * i, nil }
}

func TestStreamOrderedEmit(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 33} {
		var got []int
		err := Stream(w, 100, square, func(i, v int) error {
			got = append(got, v)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: emitted %d values, want 100", w, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: emit %d = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestStreamPrepareRunsInClaimOrder(t *testing.T) {
	// prepare consumes a shared counter; the i-th call must observe
	// value i no matter how many workers race to claim.
	for _, w := range []int{1, 4, 16} {
		counter := 0
		var got []int
		err := Stream(w, 200, func(i int) func() (int, error) {
			seed := counter // serial: claim order == index order
			counter++
			return func() (int, error) { return seed, nil }
		}, func(i, v int) error {
			got = append(got, v)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: task %d drew serial value %d, want %d", w, i, v, i)
			}
		}
	}
}

func TestStreamLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, w := range []int{1, 2, 8} {
		err := Stream(w, 64, func(i int) func() (int, error) {
			return func() (int, error) {
				if i == 7 || i == 23 || i == 40 {
					return 0, boom(i)
				}
				return i, nil
			}
		}, func(i, v int) error { return nil })
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("workers=%d: err = %v, want task 7 failed", w, err)
		}
	}
}

func TestStreamEmitErrorStops(t *testing.T) {
	stop := errors.New("enough")
	for _, w := range []int{1, 8} {
		var ran atomic.Int64
		emitted := 0
		err := Stream(w, 1000, func(i int) func() (int, error) {
			return func() (int, error) { ran.Add(1); return i, nil }
		}, func(i, v int) error {
			emitted++
			if i == 10 {
				return stop
			}
			return nil
		})
		if !errors.Is(err, stop) {
			t.Fatalf("workers=%d: err = %v, want %v", w, err, stop)
		}
		if emitted != 11 {
			t.Fatalf("workers=%d: emitted %d values, want 11", w, emitted)
		}
		// Backpressure bounds how far the pool ran past the failure.
		if n := ran.Load(); n > 11+int64(4*w) {
			t.Fatalf("workers=%d: %d tasks ran after emit stopped at 11", w, n)
		}
	}
}

func TestStreamPanicContained(t *testing.T) {
	err := Stream(4, 32, func(i int) func() (int, error) {
		return func() (int, error) {
			if i == 5 {
				panic("kaboom")
			}
			return i, nil
		}
	}, func(i, v int) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "task 5 panicked") {
		t.Fatalf("err = %v, want contained panic from task 5", err)
	}

	err = Stream(4, 32, func(i int) func() (int, error) {
		if i == 3 {
			panic("prepare kaboom")
		}
		return square(i)
	}, func(i, v int) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "task 3: prepare panicked") {
		t.Fatalf("err = %v, want contained prepare panic from task 3", err)
	}
}

func TestStreamBoundedWindow(t *testing.T) {
	// With the emitter stalled, workers must stop once they are a full
	// window ahead — the O(workers) memory guarantee.
	const w = 4
	var started, atStall atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	err := Stream(w, 1000, func(i int) func() (int, error) {
		return func() (int, error) { started.Add(1); return i, nil }
	}, func(i, v int) error {
		once.Do(func() {
			// Give the pool time to run as far ahead as it ever will,
			// then record how far it actually got.
			time.Sleep(100 * time.Millisecond)
			atStall.Store(started.Load())
			close(release)
		})
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stall happened with emitNext == 0; the pool may claim at most
	// emitNext + 2w tasks.
	if n := atStall.Load(); n > 2*w {
		t.Fatalf("pool ran %d tasks while the emitter was stalled, want <= %d", n, 2*w)
	}
}

func TestStreamZeroAndNegative(t *testing.T) {
	if err := Stream(4, 0, square, func(i, v int) error { t.Fatal("emit on empty stream"); return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := Stream(4, -1, square, func(i, v int) error { return nil }); err == nil {
		t.Fatal("n=-1: expected error")
	}
}

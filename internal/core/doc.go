// Package core implements the paper's primary contribution — Centered
// Discretization — together with the baseline it replaces, Robust
// Discretization (Birget, Hong, Memon 2006).
//
// Both schemes answer the same question for click-based graphical
// passwords: how can the system accept approximately-correct re-entries
// of a click-point while storing only a cryptographic hash of it?
//
// Centered Discretization (Chiasson et al. 2008) discretizes each axis
// into segments of length 2r, offset per original point so the point
// sits exactly in the middle of its segment:
//
//	i = floor((x - r) / 2r)   segment index  (hashed)
//	d = (x - r) mod 2r        grid offset    (stored in the clear)
//
// Re-entry x' maps to i' = floor((x' - d) / 2r); acceptance i' == i is
// exactly equivalent to |x' - x| <= r (half-open on the +r side; with
// half-pixel r and integer pixels the boundary is never hit, giving an
// odd 2r+1-pixel square perfectly centered on the click).
//
// Robust Discretization overlays three static grids of 6r x 6r squares
// diagonally offset by 2r, picking for each point a grid in which the
// point is "r-safe" (at least r from every grid line). That guarantees
// acceptance within r and rejection beyond rmax = 5r, but between r and
// 5r behaviour depends on where the point happens to fall in its square
// — the source of the false accepts and false rejects the paper
// quantifies.
//
// All arithmetic is exact, in sixth-pixel integer units (package fixed).
// Both schemes generalize to n dimensions; Robust uses n+1 grids with
// squares of side 2r(n+1).
package core

package attack

import (
	"fmt"

	"clickpass/internal/core"
	"clickpass/internal/fixed"
	"clickpass/internal/geom"
	"clickpass/internal/passhash"
)

// GridBlindResult reports an offline attack mounted WITHOUT the
// clear-text grid identifiers (§5.1's "unusual case where only the
// hashed passwords are known"): for every guess the attacker must hash
// every possible grid-identifier combination. This is the empirical
// counterpart of UnknownGridBits — run on single-click verifiers where
// the enumeration is tractable, it shows Centered costing side^2
// hashes per guess where Robust costs 3.
type GridBlindResult struct {
	Matched bool
	// Hashes is the number of digest computations performed.
	Hashes int
	// Combinations is the number of grid-identifier candidates.
	Combinations int
}

// ClearCandidates enumerates every grid identifier a 1-click verifier
// could have stored for integer-pixel clicks: the 3 grids for Robust,
// or the side^2 (dx, dy) offset pairs for Centered.
func ClearCandidates(scheme core.Scheme) ([]core.Clear, error) {
	switch s := scheme.(type) {
	case *core.Robust2D:
		return []core.Clear{{Grid: 0}, {Grid: 1}, {Grid: 2}}, nil
	case *core.Centered2D:
		sidePx := int(s.SquareSide() / fixed.Scale)
		// Offsets observable from integer-pixel clicks: discretize one
		// full period of positions.
		axis := make([]fixed.Sub, 0, sidePx)
		seen := make(map[fixed.Sub]bool, sidePx)
		for px := 0; px < sidePx; px++ {
			tok := s.Enroll(geom.Pt(px, 0))
			if !seen[tok.Clear.DX] {
				seen[tok.Clear.DX] = true
				axis = append(axis, tok.Clear.DX)
			}
		}
		out := make([]core.Clear, 0, len(axis)*len(axis))
		for _, dx := range axis {
			for _, dy := range axis {
				out = append(out, core.Clear{DX: dx, DY: dy})
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("attack: unsupported scheme %T", scheme)
	}
}

// GridBlindTest tries one guessed click against a stolen 1-click
// verifier (digest + salt, no grid identifier), hashing every grid-
// identifier candidate. It returns whether any candidate matched and
// how many hash computations that cost.
func GridBlindTest(scheme core.Scheme, params passhash.Params, digest []byte, guess geom.Point) (GridBlindResult, error) {
	candidates, err := ClearCandidates(scheme)
	if err != nil {
		return GridBlindResult{}, err
	}
	// One reusable hasher across the whole candidate enumeration: the
	// attack's cost is hash computations, not hasher setup.
	hasher, err := passhash.NewHasher(params)
	if err != nil {
		return GridBlindResult{}, err
	}
	res := GridBlindResult{Combinations: len(candidates)}
	var token [1]core.Token
	for _, clear := range candidates {
		token[0] = core.Token{Clear: clear, Secret: scheme.Locate(guess, clear)}
		res.Hashes++
		if hasher.Verify(digest, token[:]) {
			res.Matched = true
			return res, nil
		}
	}
	return res, nil
}

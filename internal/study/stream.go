package study

import (
	"fmt"
	"math"

	"clickpass/internal/dataset"
	"clickpass/internal/par"
	"clickpass/internal/rng"
)

// Participant is one streamed cohort member's generated block:
// everything RunCohort would have contributed to the materialized
// dataset for this participant, with final sequential password IDs
// already assigned. Blocks arrive in participant order.
type Participant struct {
	// Index is the participant's ordinal in [0, Participants).
	Index int
	// Passwords are the participant's created passwords with final
	// dataset IDs (sequential from CohortConfig.FirstPasswordID in
	// participant order).
	Passwords []dataset.Password
	// Logins are the participant's login attempts; PasswordID points at
	// the final password IDs above.
	Logins []dataset.Login
}

// Stream is the streaming form of Run: it generates the same study —
// byte-identical passwords and logins, in the same order — but hands
// each password and its logins to emit instead of materializing a
// dataset.Dataset, holding only O(workers) blocks in memory. Each
// password draws from its own rng stream split off the seed in
// password order (par.Stream's serial prepare hook reproduces Run's
// split-before-fan-out sequence exactly), so Stream and Run agree for
// any worker count. An error from emit stops generation and is
// returned.
func Stream(cfg Config, emit func(pw dataset.Password, logins []dataset.Login) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	base := rng.New(cfg.Seed)
	type block struct {
		pw     dataset.Password
		logins []dataset.Login
	}
	return par.Stream(cfg.Workers, cfg.Passwords,
		func(i int) func() (block, error) {
			r := base.Split() // serial, in password order: Run's stream sequence
			return func() (block, error) {
				pw, logins := genPassword(r, cfg, i)
				return block{pw: pw, logins: logins}, nil
			}
		},
		func(_ int, b block) error { return emit(b.pw, b.logins) })
}

// RunCohortStream is the streaming form of RunCohort: the same cohort
// — byte-identical passwords and logins, in the same participant
// order, with the same sequential password IDs — delivered one
// Participant at a time in O(workers) memory. A 10M-user cohort
// streams through a fixed-size reorder window instead of a
// multi-gigabyte dataset. ID renumbering happens serially in the
// ordered emit path, exactly where RunCohort does it after its
// fan-out. An error from emit stops generation and is returned.
func RunCohortStream(cfg CohortConfig, emit func(p Participant) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	base := rng.New(cfg.Seed)
	pwCfg := Config{
		Image:         cfg.Image,
		Passwords:     1,
		Clicks:        cfg.Clicks,
		MinSeparation: cfg.MinSeparation,
		Error:         cfg.Error,
	}
	nextID := cfg.FirstPasswordID
	return par.Stream(cfg.Workers, cfg.Participants,
		func(p int) func() (Participant, error) {
			r := base.Split() // serial, in participant order: RunCohort's stream sequence
			return func() (Participant, error) {
				return genParticipant(r, cfg, pwCfg, p), nil
			}
		},
		func(_ int, blk Participant) error {
			// Participant password counts are random, so IDs can only be
			// assigned here, on the serial in-order path.
			for i := range blk.Passwords {
				blk.Passwords[i].ID += nextID
			}
			for i := range blk.Logins {
				blk.Logins[i].PasswordID += nextID
			}
			nextID += len(blk.Passwords)
			return emit(blk)
		})
}

// genPassword generates the i-th study password and its logins from
// the password's own rng stream — the per-task body shared by Run and
// Stream.
func genPassword(r *rng.Source, cfg Config, i int) (dataset.Password, []dataset.Login) {
	size := cfg.Image.Size
	id := cfg.FirstPasswordID + i
	clicks := samplePassword(r, cfg)
	pw := dataset.Password{
		ID:    id,
		User:  fmt.Sprintf("%s-p%03d", cfg.Image.Name, i),
		Image: cfg.Image.Name,
	}
	for _, p := range clicks {
		pw.Clicks = append(pw.Clicks, dataset.FromPoint(p))
	}
	var logins []dataset.Login
	for a := 0; a < cfg.LoginsPerPassword; a++ {
		login := dataset.Login{PasswordID: id, Attempt: a}
		for _, p := range clicks {
			login.Clicks = append(login.Clicks, dataset.FromPoint(cfg.Error.perturb(r, p, size)))
		}
		logins = append(logins, login)
	}
	return pw, logins
}

// genParticipant generates participant p's block from the
// participant's own rng stream — the per-task body shared by RunCohort
// and RunCohortStream. Password IDs and Login.PasswordID are
// participant-local ordinals; the serial emit path renumbers them.
func genParticipant(r *rng.Source, cfg CohortConfig, pwCfg Config, p int) Participant {
	size := cfg.Image.Size
	blk := Participant{Index: p}
	// Lognormal skill multiplier with mean ~1.
	skill := math.Exp(r.NormalScaled(0, cfg.SkillSpread))
	if skill < 0.3 {
		skill = 0.3
	}
	if skill > 3 {
		skill = 3
	}
	nPw := sampleCount(r, cfg.PasswordsPerParticipant)
	for k := 0; k < nPw; k++ {
		clicksPts := samplePassword(r, pwCfg)
		pw := dataset.Password{
			ID:    k,
			User:  fmt.Sprintf("%s-c%03d", cfg.Image.Name, p),
			Image: cfg.Image.Name,
		}
		for _, pt := range clicksPts {
			pw.Clicks = append(pw.Clicks, dataset.FromPoint(pt))
		}
		blk.Passwords = append(blk.Passwords, pw)
		nLogins := sampleCount(r, cfg.LoginsPerPassword)
		errScale := skill
		for a := 0; a < nLogins; a++ {
			model := cfg.Error.scaled(errScale)
			login := dataset.Login{PasswordID: k, Attempt: a}
			for _, pt := range clicksPts {
				login.Clicks = append(login.Clicks, dataset.FromPoint(model.perturb(r, pt, size)))
			}
			blk.Logins = append(blk.Logins, login)
			// Practice: later attempts get steadier, floored at half the
			// participant's initial error.
			errScale *= cfg.PracticeRate
			if errScale < skill/2 {
				errScale = skill / 2
			}
		}
	}
	return blk
}

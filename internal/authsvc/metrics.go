package authsvc

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates the serving pipeline's observability signals:
// request counts by op and by outcome code, latency (total, max, and
// per-request mean via the snapshot), and the in-flight gauge with its
// high-water mark. One Metrics instance is shared by every transport
// of a server, so the numbers describe the service, not one front end.
//
// The two concerns attach at different pipeline depths (see
// WithMetrics and WithInFlight): counts and latency are recorded
// outermost, so refused and throttled requests — the load an
// overloaded server sheds — are visible in by_code; the in-flight
// gauge runs inside admission, so its high-water mark is provably
// capped by the shared limiter.
//
// Safe for concurrent use; the zero value is ready.
type Metrics struct {
	inFlight atomic.Int64
	peak     atomic.Int64

	mu       sync.Mutex
	byOp     map[Op]int64
	byCode   map[Code]int64
	requests int64
	latTotal time.Duration
	latMax   time.Duration
}

// enter marks a request entering the handled (admitted) phase.
func (m *Metrics) enter() {
	n := m.inFlight.Add(1)
	for {
		p := m.peak.Load()
		if n <= p || m.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// leave marks a request leaving the handled phase.
func (m *Metrics) leave() { m.inFlight.Add(-1) }

// observe records one finished request's outcome and latency.
func (m *Metrics) observe(op Op, code Code, d time.Duration) {
	m.mu.Lock()
	if m.byOp == nil {
		m.byOp = make(map[Op]int64)
		m.byCode = make(map[Code]int64)
	}
	m.byOp[op]++
	m.byCode[code]++
	m.requests++
	m.latTotal += d
	if d > m.latMax {
		m.latMax = d
	}
	m.mu.Unlock()
}

// InFlight returns the number of requests currently being handled.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// Peak returns the high-water mark of the in-flight gauge — the
// observable proof that a shared admission limiter really caps the
// combined transports.
func (m *Metrics) Peak() int64 { return m.peak.Load() }

// Snapshot is a point-in-time copy of the counters, JSON-ready for the
// metrics endpoint.
type Snapshot struct {
	Requests  int64          `json:"requests"`
	InFlight  int64          `json:"in_flight"`
	Peak      int64          `json:"peak_in_flight"`
	ByOp      map[Op]int64   `json:"by_op,omitempty"`
	ByCode    map[Code]int64 `json:"by_code,omitempty"`
	LatMeanUs float64        `json:"latency_mean_us"`
	LatMaxUs  float64        `json:"latency_max_us"`
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		InFlight: m.inFlight.Load(),
		Peak:     m.peak.Load(),
	}
	m.mu.Lock()
	s.Requests = m.requests
	if len(m.byOp) > 0 {
		s.ByOp = make(map[Op]int64, len(m.byOp))
		for k, v := range m.byOp {
			s.ByOp[k] = v
		}
		s.ByCode = make(map[Code]int64, len(m.byCode))
		for k, v := range m.byCode {
			s.ByCode[k] = v
		}
	}
	if m.requests > 0 {
		s.LatMeanUs = float64(m.latTotal.Microseconds()) / float64(m.requests)
	}
	s.LatMaxUs = float64(m.latMax.Microseconds())
	m.mu.Unlock()
	return s
}

// Handler serves the snapshot as JSON — pwserver's -metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}

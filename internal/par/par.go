// Package par is the repository's deterministic fan-out subsystem: a
// bounded worker pool with ordered result collection that every hot
// path (study generation, analysis tables, dictionary attacks) drives
// its parallelism through.
//
// Design rules, so "parallel" never means "different":
//
//   - Results are collected by task index, so the output of Map is
//     identical for any worker count — scheduling can reorder
//     execution, never results.
//   - On failure the error returned is always the one from the
//     lowest-numbered failing task. Tasks are claimed from an atomic
//     counter in index order, so every task below the first observed
//     failure has already been claimed and will run to completion;
//     the minimum failing index is therefore always recorded,
//     regardless of scheduling.
//   - Per-goroutine state (scratch buffers, split RNG streams) is made
//     explicit via MapWith rather than smuggled through captures.
//
// Worker counts default to runtime.GOMAXPROCS(0) and are overridable
// (pass 1 to force serial execution, e.g. in tests or benchmarks).
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Default is the worker count used when a caller passes workers <= 0:
// one worker per schedulable CPU.
func Default() int { return runtime.GOMAXPROCS(0) }

// clamp normalizes a requested worker count for n tasks.
func clamp(workers, n int) int {
	if workers <= 0 {
		workers = Default()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) on a bounded worker pool and
// returns the n results in index order. workers <= 0 means Default();
// workers == 1 runs inline with no goroutines. The result slice is
// byte-for-byte independent of the worker count as long as fn(i) is a
// deterministic function of i.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWith(workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// ForEach runs fn(i) for every i in [0, n) on a bounded worker pool.
// It returns the error of the lowest-numbered failing task, or nil.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// MapWith is Map with per-worker state: newState runs once in each
// worker goroutine and its value is handed to every fn call that
// worker executes. Use it for scratch buffers, reusable hashers and
// similar allocation-amortizing state that must not be shared across
// goroutines. Which worker executes which index is scheduling-
// dependent, so fn's result must not depend on the state's history —
// state is for reuse, not for carrying data between tasks.
func MapWith[S, T any](workers, n int, newState func() S, fn func(state S, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("par: negative task count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	w := clamp(workers, n)
	out := make([]T, n)
	if w == 1 {
		state, err := makeState(newState, 0)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if out[i], err = call(fn, state, i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// State is built lazily on the worker's first claimed task
			// so a panicking constructor is attributed to a task index
			// and contained like any other task failure (index 0 is
			// always somebody's first claim, so a deterministic
			// constructor panic deterministically reports task 0).
			var state S
			haveState := false
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !haveState {
					var err error
					if state, err = makeState(newState, i); err != nil {
						errs[i] = err
						failed.Store(true)
						return
					}
					haveState = true
				}
				out[i], errs[i] = call(fn, state, i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// call invokes fn, converting a panic into an error so one bad task
// cannot tear down the whole process from a worker goroutine.
func call[S, T any](fn func(S, int) (T, error), state S, i int) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d panicked: %v", i, r)
		}
	}()
	return fn(state, i)
}

// makeState invokes newState with the same panic containment as call,
// attributing a failure to the task the worker was about to run.
func makeState[S any](newState func() S, i int) (state S, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d: state constructor panicked: %v", i, r)
		}
	}()
	return newState(), nil
}

package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X", "Grid", "False Accept", "False Reject")
	tb.AddRow("9x9", 3.5, 21.8)
	tb.AddRow("13x13", 1.7, 21.1)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table X", "Grid", "13x13", "21.1", "3.5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "A", "LongHeader")
	tb.AddRowf("xxxxxxx", "1")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Header and data row should be the same width.
	if len(lines[0]) < len("xxxxxxx") {
		t.Error("header row not padded to column width")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, 2.5)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2.5\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestBarChart(t *testing.T) {
	series := []Series{
		{Name: "centered", Labels: []string{"r=4", "r=6"}, Values: []float64{10, 15}},
		{Name: "robust", Labels: []string{"r=4", "r=6"}, Values: []float64{35, 45}},
	}
	var buf bytes.Buffer
	if err := BarChart(&buf, "Figure 8", series, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 8", "r=4", "centered", "robust", "45.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// robust bar at 45% of width 40 = 18 hashes.
	if !strings.Contains(out, strings.Repeat("#", 18)) {
		t.Error("bar scaling wrong")
	}
}

func TestBarChartValidation(t *testing.T) {
	if err := BarChart(&bytes.Buffer{}, "t", nil, 40); err == nil {
		t.Error("empty series accepted")
	}
	bad := []Series{{Name: "x", Labels: []string{"a"}, Values: []float64{1, 2}}}
	if err := BarChart(&bytes.Buffer{}, "t", bad, 40); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestBarChartClamping(t *testing.T) {
	series := []Series{
		{Name: "s", Labels: []string{"x"}, Values: []float64{150}},
		{Name: "t", Labels: []string{"x"}, Values: []float64{-5}},
	}
	var buf bytes.Buffer
	if err := BarChart(&buf, "", series, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), strings.Repeat("#", 11)) {
		t.Error("bar exceeded max width")
	}
}

func TestSeriesCSV(t *testing.T) {
	series := []Series{
		{Name: "centered", Labels: []string{"9", "13"}, Values: []float64{1.5, 11.1}},
		{Name: "robust", Labels: []string{"9", "13"}, Values: []float64{1.4, 6.8}},
	}
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "label,centered,robust\n") {
		t.Errorf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, "13,11.10,6.80") {
		t.Errorf("csv rows wrong: %q", out)
	}
	if err := SeriesCSV(&buf, nil); err == nil {
		t.Error("empty series accepted")
	}
	short := []Series{
		{Name: "a", Labels: []string{"1", "2"}, Values: []float64{1, 2}},
		{Name: "b", Labels: []string{"1", "2"}, Values: []float64{1}},
	}
	if err := SeriesCSV(&buf, short); err == nil {
		t.Error("short series accepted")
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := NewTable("Table 2", "r", "FA")
	tb.AddRow(4, 32.1)
	tb.AddRowf("6") // short row: padded
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**Table 2**", "| r | FA |", "|---|---|", "| 4 | 32.1 |", "| 6 |  |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

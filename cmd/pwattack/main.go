// Command pwattack mounts the paper's §5.1 human-seeded offline
// dictionary attack against a simulated deployment and validates the
// analytic attack model against the real hashed verifiers:
//
//  1. Simulate the field study and enroll every password into a real
//     vault (salted, iterated hashes).
//  2. Simulate the lab study and build the ~2^36-entry permutation
//     dictionary (evaluated analytically by bipartite matching).
//  3. For every password the model declares cracked, reconstruct a
//     concrete dictionary entry and run it through the production
//     verifier — it must authenticate.
//
// With -serve it instead red-teams a live pwserver: the victim
// population is enrolled over the wire (field study, or a cohort
// streamed in O(workers) memory with -cohort) and the online attack's
// saliency-ordered guess stream is driven through a real transport,
// reporting the compromise curve plus attacker-visible friction and
// cross-checking the result against the in-process model. See
// README.md for the flag table and PERFORMANCE.md for real-run grids.
//
// Usage:
//
//	pwattack -image cars -side 36 -scheme robust -seed 42
//	pwattack -serve 127.0.0.1:7700 -scheme centered -side 13 -lockout 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clickpass/internal/attack"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/par"
	"clickpass/internal/passpoints"
	"clickpass/internal/study"
)

func main() {
	var (
		imageName = flag.String("image", "cars", "study image: cars or pool")
		side      = flag.Int("side", 36, "grid-square side (pixels)")
		schemeArg = flag.String("scheme", "robust", "discretization scheme: centered or robust")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		iter      = flag.Int("iterations", 100, "hash iterations for the demo vault")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = one per CPU, 1 = serial; results are identical)")
		lockout   = flag.Int("lockout", 10, "failed-attempt lockout for the online attack (0 disables)")
		serve     = flag.String("serve", "", "red-team a live pwserver at this address instead of simulating in process")
		transport = flag.String("transport", "tcp", "wire transport for -serve: tcp or http")
		cohort    = flag.Int("cohort", 0, "with -serve: stream this many cohort participants as victims (0 = field study)")
		storm     = flag.Int("storm", 0, "with -serve: concurrent legitimate clients during the attack (0 = off)")
		stormOps  = flag.Int("storm-ops", 50, "with -serve: requests per storm client")
	)
	flag.Parse()

	var img *imagegen.Image
	for _, candidate := range imagegen.Gallery() {
		if candidate.Name == *imageName {
			img = candidate
		}
	}
	if img == nil {
		fatal(fmt.Errorf("unknown image %q", *imageName))
	}
	var (
		scheme core.Scheme
		err    error
	)
	switch *schemeArg {
	case "centered":
		scheme, err = core.NewCentered(*side)
	case "robust":
		scheme, err = core.NewRobust2D(*side, core.MostCentered, *seed)
	default:
		err = fmt.Errorf("unknown scheme %q", *schemeArg)
	}
	if err != nil {
		fatal(err)
	}

	if *serve != "" {
		if *lockout <= 0 {
			fatal(fmt.Errorf("-serve needs a positive -lockout (the per-account guess budget)"))
		}
		if err := runServe(serveOptions{
			addr:      *serve,
			transport: *transport,
			image:     img,
			scheme:    scheme,
			seed:      *seed,
			workers:   *workers,
			lockout:   *lockout,
			cohort:    *cohort,
			storm:     *storm,
			stormOps:  *stormOps,
		}); err != nil {
			fatal(err)
		}
		return
	}

	fieldCfg := study.FieldConfig(img, *seed)
	fieldCfg.Workers = *workers
	field, err := study.Run(fieldCfg)
	if err != nil {
		fatal(err)
	}
	labCfg := study.LabConfig(img, *seed+100)
	labCfg.Workers = *workers
	lab, err := study.Run(labCfg)
	if err != nil {
		fatal(err)
	}
	dict, err := attack.BuildDictionary(lab, 5)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("image %s: %d victim passwords; dictionary %d points (%.1f-bit permutation space)\n",
		img.Name, len(field.Passwords), len(dict.Points), dict.Bits())

	start := time.Now()
	res, err := attack.OfflineKnownGrids(field, dict, scheme, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("offline attack (%s %dx%d, known grid identifiers): %d/%d cracked (%.1f%%) in %v\n",
		res.Scheme, *side, *side, res.Cracked, res.Passwords, res.CrackedPct(), time.Since(start).Round(time.Millisecond))

	validateAgainstRealHashes(field, dict, scheme, img, *iter, res.Cracked, *workers)

	if *lockout > 0 {
		start = time.Now()
		online, err := attack.Online(field, lab, img, scheme, *lockout, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("online attack (lockout %d, saliency-ranked guesses): %d/%d accounts compromised (%.1f%%) in %v\n",
			*lockout, online.Compromised, online.Accounts, online.CompromisedPct(),
			time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("\nwithout grid identifiers the dictionary must grow by %.1f bits (%s)\n",
		attack.UnknownGridBits(scheme, 5), scheme.Name())
}

// validateAgainstRealHashes enrolls every field password with real
// salted iterated hashing and confirms each analytic crack with a
// concrete dictionary entry accepted by the production verifier. The
// per-password checks fan out across workers, each with its own attack
// scratch (the hashing dominates, so this scales near-linearly).
func validateAgainstRealHashes(field *dataset.Dataset, dict *attack.Dictionary, scheme core.Scheme, img *imagegen.Image, iterations, expected, workers int) {
	cfg := passpoints.Config{
		Image:      geom.Size{W: img.Size.W, H: img.Size.H},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: iterations,
	}
	if !core.ConcurrencySafe(scheme) {
		workers = 1
	}
	start := time.Now()
	base := attack.NewCracker(dict.Points)
	type check struct {
		attempted, hit bool
		user           string
	}
	checks, err := par.MapWith(workers, len(field.Passwords), base.Fork,
		func(c *attack.Cracker, i int) (check, error) {
			pw := &field.Passwords[i]
			// Witness first: enrollment costs a full iterated hash, so
			// only pay it for passwords the model claims to crack.
			entry, ok := c.Witness(pw.Points(), scheme)
			if !ok {
				return check{}, nil
			}
			rec, err := passpoints.Enroll(cfg, pw.User, pw.Points())
			if err != nil {
				return check{}, err
			}
			hit, err := passpoints.Verify(cfg, rec, entry)
			if err != nil {
				return check{}, err
			}
			return check{attempted: true, hit: hit, user: pw.User}, nil
		})
	if err != nil {
		fatal(err)
	}
	validated, hashChecks := 0, 0
	for _, c := range checks {
		if !c.attempted {
			continue
		}
		hashChecks++
		if c.hit {
			validated++
		} else {
			fmt.Printf("  MODEL MISMATCH: witness for %q rejected by real verifier\n", c.user)
		}
	}
	fmt.Printf("end-to-end validation: %d/%d analytic cracks confirmed against real %d-iteration hashes (%d verifications, %v)\n",
		validated, expected, iterations, hashChecks, time.Since(start).Round(time.Millisecond))
	if validated != expected {
		fmt.Println("  WARNING: analytic model and hash-level verification disagree")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwattack:", err)
	os.Exit(1)
}

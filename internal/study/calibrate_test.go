package study

import (
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
)

func TestCalibrateRanksModels(t *testing.T) {
	// The calibrated default must beat a deliberately bad model.
	candidates := []ErrorModel{
		{MotorSigma: 8, MaxError: 20}, // hopeless: everything misses
		DefaultErrorModel(),
	}
	results, err := Calibrate(candidates, PaperTargets(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].RMSE > results[1].RMSE {
		t.Error("results not sorted by RMSE")
	}
	if results[0].Model.MotorSigma != DefaultErrorModel().MotorSigma {
		t.Errorf("calibrated default (RMSE %.2f) lost to sigma-8 (RMSE %.2f)",
			results[1].RMSE, results[0].RMSE)
	}
	// The default should land within a few percentage points RMS of
	// the paper across all 9 table cells.
	if results[0].RMSE > 6 {
		t.Errorf("default model RMSE %.2f — calibration has drifted", results[0].RMSE)
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(nil, PaperTargets(), 1); err == nil {
		t.Error("empty candidate list accepted")
	}
	bad := []ErrorModel{{MotorSigma: -1, MaxError: 10}}
	if _, err := Calibrate(bad, PaperTargets(), 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestTargetScoreValidation(t *testing.T) {
	var empty Target
	d, err := Run(FieldConfig(imagegen.Cars(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Score([]*dataset.Dataset{d}, core.MostCentered, 1, 1); err == nil {
		t.Error("target with no cells accepted")
	}
}

func TestPaperTargetsComplete(t *testing.T) {
	tg := PaperTargets()
	if len(tg.Table1FR) != 3 || len(tg.Table1FA) != 3 || len(tg.Table2FA) != 3 {
		t.Error("paper targets incomplete")
	}
	if tg.Table1FR[13] != 21.1 || tg.Table2FA[4] != 32.1 {
		t.Error("paper target values wrong")
	}
}

package authproto

import (
	"context"
	"net"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/session"
	"clickpass/internal/vault"
)

// countingStore wraps a vault.Store and counts every call — the probe
// behind the session tier's core claim: validating a token touches
// the store zero times.
type countingStore struct {
	vault.Store
	calls atomic.Int64
}

func (c *countingStore) Put(rec *passpoints.Record) error {
	c.calls.Add(1)
	return c.Store.Put(rec)
}

func (c *countingStore) Replace(rec *passpoints.Record) error {
	c.calls.Add(1)
	return c.Store.Replace(rec)
}

func (c *countingStore) Get(user string) (*passpoints.Record, error) {
	c.calls.Add(1)
	return c.Store.Get(user)
}

func (c *countingStore) Delete(user string) {
	c.calls.Add(1)
	c.Store.Delete(user)
}

func (c *countingStore) Users() []string {
	c.calls.Add(1)
	return c.Store.Users()
}

func (c *countingStore) Len() int {
	c.calls.Add(1)
	return c.Store.Len()
}

func (c *countingStore) All() []*passpoints.Record {
	c.calls.Add(1)
	return c.Store.All()
}

// sessionServer builds a server over a counting store with the
// session tier mounted.
func sessionServer(t *testing.T) (*Server, *countingStore, *session.Manager) {
	t.Helper()
	cs := &countingStore{Store: vault.NewSharded(0)}
	s, err := NewServer(testCfg(t), cs, 3)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := session.New(session.Options{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	s.SetSession(mgr)
	return s, cs, mgr
}

func testCfg(t *testing.T) passpoints.Config {
	t.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	return passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}
}

// TestSessionEndToEndTCP: login over real TCP returns a token; the
// token validates on the same front with zero store calls; a password
// change revokes it.
func TestSessionEndToEndTCP(t *testing.T) {
	s, cs, _ := sessionServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l) }()

	c, err := DialService(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if resp, err := c.Enroll(ctx, "iris", clicks(0)); err != nil || !resp.OK() {
		t.Fatalf("enroll: %+v %v", resp, err)
	}
	login, err := c.Login(ctx, "iris", clicks(0))
	if err != nil || !login.OK() {
		t.Fatalf("login: %+v %v", login, err)
	}
	if login.Token == "" {
		t.Fatalf("session-enabled login returned no token")
	}

	before := cs.calls.Load()
	for i := 0; i < 50; i++ {
		resp, err := c.Validate(ctx, login.Token)
		if err != nil || !resp.OK() || resp.User != "iris" {
			t.Fatalf("validate %d: %+v %v", i, resp, err)
		}
	}
	if resp, err := c.Validate(ctx, "bogus"); err != nil || resp.Code != authsvc.CodeDenied {
		t.Fatalf("bogus validate: %+v %v", resp, err)
	}
	if got := cs.calls.Load(); got != before {
		t.Fatalf("validate path made %d store calls, want 0", got-before)
	}

	// Changing the password cuts off the old session.
	if resp, err := c.Change(ctx, "iris", clicks(0), clicks(1)); err != nil || !resp.OK() {
		t.Fatalf("change: %+v %v", resp, err)
	}
	if resp, err := c.Validate(ctx, login.Token); err != nil || resp.Code != authsvc.CodeDenied {
		t.Fatalf("validate after change: %+v %v", resp, err)
	}
	// A fresh login under the new password mints a working token.
	login2, err := c.Login(ctx, "iris", clicks(1))
	if err != nil || !login2.OK() || login2.Token == "" {
		t.Fatalf("re-login: %+v %v", login2, err)
	}
	if resp, err := c.Validate(ctx, login2.Token); err != nil || !resp.OK() {
		t.Fatalf("validate fresh token: %+v %v", resp, err)
	}
}

// TestSessionEndToEndHTTP: the same flow over the HTTP front — both
// codecs share the one WithSession stage.
func TestSessionEndToEndHTTP(t *testing.T) {
	s, _, _ := sessionServer(t)
	srv := httptest.NewServer(s.HTTPHandler())
	defer srv.Close()
	c := NewHTTPClient(srv.URL, nil)
	defer c.Close()
	ctx := context.Background()
	if resp, err := c.Enroll(ctx, "hugo", clicks(0)); err != nil || !resp.OK() {
		t.Fatalf("enroll: %+v %v", resp, err)
	}
	login, err := c.Login(ctx, "hugo", clicks(0))
	if err != nil || !login.OK() || login.Token == "" {
		t.Fatalf("login: %+v %v", login, err)
	}
	if resp, err := c.Validate(ctx, login.Token); err != nil || !resp.OK() || resp.User != "hugo" {
		t.Fatalf("validate: %+v %v", resp, err)
	}
	if resp, err := c.Validate(ctx, ""); err != nil || resp.Code != authsvc.CodeDenied {
		t.Fatalf("empty-token validate: %+v %v", resp, err)
	}
}

// TestSessionLockoutRevokes: driving an account into the §5.1 lockout
// revokes its outstanding session — an attacker racing the lockout
// cannot keep an earlier stolen token alive.
func TestSessionLockoutRevokes(t *testing.T) {
	s, _, _ := sessionServer(t)
	ctx := context.Background()
	if resp := s.Handle(Request{Op: OpEnroll, User: "mallory", Clicks: clicks(0)}); !resp.OK {
		t.Fatalf("enroll: %+v", resp)
	}
	login := s.Handle(Request{Op: OpLogin, User: "mallory", Clicks: clicks(0)})
	if !login.OK || login.Token == "" {
		t.Fatalf("login: %+v", login)
	}
	for i := 0; i < 3; i++ {
		s.Handle(Request{Op: OpLogin, User: "mallory", Clicks: clicks(9)})
	}
	if resp := s.Handle(Request{Op: OpLogin, User: "mallory", Clicks: clicks(0)}); !resp.Locked {
		t.Fatalf("expected lockout, got %+v", resp)
	}
	resp := s.HandleContext(ctx, Request{Op: OpValidate, Token: login.Token})
	if authsvc.Code(resp.Code) != authsvc.CodeDenied {
		t.Fatalf("validate after lockout: %+v", resp)
	}
}

// TestValidateWithoutSessionTier: a server with no session tier
// refuses OpValidate with code=invalid rather than panicking or
// minting.
func TestValidateWithoutSessionTier(t *testing.T) {
	s := shardedServer(t, 3)
	resp := s.Handle(Request{Op: OpValidate, Token: "whatever"})
	if authsvc.Code(resp.Code) != authsvc.CodeInvalid {
		t.Fatalf("validate without session tier: %+v", resp)
	}
	login := s.Handle(Request{Op: OpLogin, User: "nobody", Clicks: clicks(0)})
	if login.Token != "" {
		t.Fatalf("sessionless server minted a token: %+v", login)
	}
}

// Webauth: a graphical-password login service over HTTP — the
// deployment scenario the paper's schemes exist for. It starts the
// authentication server (internal/authproto) on a loopback listener,
// enrolls a user, then exercises the JSON API as a client: good login,
// near-miss login, and an online guessing burst that trips the
// account lockout (§5.1's defense).
//
// Run with -listen :8080 to keep the server running for manual use:
//
//	curl -X POST localhost:8080/v1/login -d '{"user":"demo","clicks":[...]}'
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"clickpass/internal/authproto"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

func main() {
	listen := flag.String("listen", "", "keep serving on this address instead of exiting")
	flag.Parse()

	scheme, err := core.NewCentered(13)
	if err != nil {
		log.Fatal(err)
	}
	cfg := passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 1000,
	}
	srv, err := authproto.NewServer(cfg, vault.New(), 3)
	if err != nil {
		log.Fatal(err)
	}

	addr := *listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(l, srv.HTTPHandler()); err != nil {
			log.Print(err)
		}
	}()
	base := "http://" + l.Addr().String()
	fmt.Printf("graphical-password HTTP service on %s\n\n", base)

	post := func(path string, body map[string]interface{}) (int, authproto.Response) {
		data, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out authproto.Response
		raw, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(raw, &out)
		return resp.StatusCode, out
	}
	password := [][2]int{{52, 70}, {246, 74}, {74, 168}, {330, 268}, {180, 90}}
	clicks := func(dx int) []map[string]int {
		out := make([]map[string]int, len(password))
		for i, p := range password {
			out[i] = map[string]int{"x": p[0] + dx, "y": p[1]}
		}
		return out
	}

	status, _ := post("/v1/enroll", map[string]interface{}{"user": "demo", "clicks": clicks(0)})
	fmt.Printf("POST /v1/enroll                      -> %d\n", status)
	status, _ = post("/v1/login", map[string]interface{}{"user": "demo", "clicks": clicks(5)})
	fmt.Printf("POST /v1/login (5px off: tolerated)  -> %d\n", status)
	status, resp := post("/v1/login", map[string]interface{}{"user": "demo", "clicks": clicks(9)})
	fmt.Printf("POST /v1/login (9px off: rejected)   -> %d (%d attempts left)\n", status, resp.Remaining)

	// An online guesser burns through the lockout budget.
	for i := 0; ; i++ {
		status, resp = post("/v1/login", map[string]interface{}{"user": "demo", "clicks": clicks(50 + i)})
		fmt.Printf("POST /v1/login (guess %d)             -> %d\n", i+1, status)
		if resp.Locked {
			fmt.Println("account locked: online dictionary attack stopped by rate limiting (§5.1)")
			break
		}
		if i > 5 {
			log.Fatal("lockout never triggered")
		}
	}
	// Even the correct password is refused now.
	status, _ = post("/v1/login", map[string]interface{}{"user": "demo", "clicks": clicks(0)})
	fmt.Printf("POST /v1/login (correct, but locked) -> %d\n", status)

	// The same service through the unified typed client: transports are
	// interchangeable behind authsvc.Client, and responses carry a
	// typed code instead of flags.
	c := authproto.NewHTTPClient(base, nil)
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		log.Fatal(err)
	}
	typedClicks := make([]dataset.Click, len(password))
	for i, p := range password {
		typedClicks[i] = dataset.Click{X: p[0], Y: p[1]}
	}
	lockResp, err := c.Login(ctx, "demo", typedClicks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unified client login code             -> %q (%s)\n", lockResp.Code, lockResp.Err)

	if *listen != "" {
		fmt.Println("\nserving until interrupted...")
		select {}
	}
}

// Command doclint is the repo's godoc-coverage gate, run by `make
// docs-lint` and CI. It enforces two rules with the standard library's
// go/ast — no external linter dependency:
//
//  1. every package under the -pkgdoc trees carries a package comment
//     (the one-paragraph orientation a reader gets from `go doc`);
//  2. every exported top-level identifier — types, funcs, methods,
//     consts, vars — in the -exported packages carries a doc comment.
//
// Usage:
//
//	doclint                          # repo defaults: package comments under
//	                                 # internal/ and cmd/, exported-identifier
//	                                 # comments in every internal/ package
//	doclint -exported internal/vault # strict mode for one package
//
// Findings print as file:line: message, one per line; the exit status
// is 1 if anything is missing, so CI fails when coverage regresses.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	var (
		pkgdocArg   = flag.String("pkgdoc", "internal,cmd", "comma-separated directory trees whose packages must have a package comment")
		exportedArg = flag.String("exported", "internal", "comma-separated directory trees whose exported identifiers must have doc comments")
	)
	flag.Parse()

	var problems []string
	for _, root := range splitList(*pkgdocArg) {
		dirs, err := goDirs(root)
		if err != nil {
			fatal(err)
		}
		for _, dir := range dirs {
			p, err := checkDir(dir, false)
			if err != nil {
				fatal(err)
			}
			problems = append(problems, p...)
		}
	}
	for _, root := range splitList(*exportedArg) {
		dirs, err := goDirs(root)
		if err != nil {
			fatal(err)
		}
		for _, dir := range dirs {
			p, err := checkDir(dir, true)
			if err != nil {
				fatal(err)
			}
			problems = append(problems, p...)
		}
	}
	// The pkgdoc and exported trees overlap, so the same finding can
	// surface twice; report each once.
	sort.Strings(problems)
	seen := map[string]bool{}
	deduped := problems[:0]
	for _, p := range problems {
		if !seen[p] {
			seen[p] = true
			deduped = append(deduped, p)
		}
	}
	problems = deduped
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d missing doc comment(s)\n", len(problems))
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// goDirs walks root and returns every directory containing .go files.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one package directory (tests excluded — test
// helpers are not API) and reports missing docs. Package comments are
// always required; exported-identifier comments only when strict.
func checkDir(dir string, strict bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doclint: parsing %s: %w", dir, err)
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasDoc := false
		var files []string
		for path, f := range pkg.Files {
			files = append(files, path)
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasDoc = true
			}
		}
		if !hasDoc {
			sort.Strings(files)
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", files[0], name))
		}
		if !strict {
			continue
		}
		for path, f := range pkg.Files {
			_ = path
			for _, decl := range f.Decls {
				problems = append(problems, checkDecl(fset, decl)...)
			}
		}
	}
	return problems, nil
}

// checkDecl reports exported declarations without doc comments.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var problems []string
	missing := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || isExportedMethodOfUnexported(d) {
			return nil
		}
		if d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			missing(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		// A doc comment on the grouped decl ("// Response codes.")
		// covers its specs; otherwise each exported spec needs its own.
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && !groupDoc {
					missing(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil || groupDoc {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						missing(n.Pos(), declKind(d.Tok), n.Name)
					}
				}
			}
		}
	}
	return problems
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// isExportedMethodOfUnexported reports whether d is a method on an
// unexported receiver type — not part of the package API, so exempt.
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return !x.IsExported()
		default:
			return false
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doclint:", err)
	os.Exit(1)
}

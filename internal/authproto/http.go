package authproto

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"clickpass/internal/authsvc"
)

// HTTPHandler exposes the service over HTTP:
//
//	POST /v1/enroll  {"user": ..., "clicks": [{"x":..,"y":..}, ...]}
//	POST /v1/login   same body
//	POST /v1/change  adds "new_clicks"
//	GET  /v1/ping
//
// Responses are the same Response JSON as the TCP protocol, and every
// request — ping included — runs through the same authsvc pipeline as
// the TCP front, so both transports share one admission limiter and
// one metrics registry. Login failures return 401, lockouts and rate
// limits 429, malformed requests 400, duplicate enrollments 409,
// admission/deadline refusals 503.
//
// The administrative lockout reset is deliberately NOT routed here:
// an unauthenticated public reset would let an online guesser clear
// the failed-attempt counter and defeat the §5.1 lockout. It lives on
// AdminHandler, which deployments bind to a separate, non-public
// listener (pwserver's -metrics address).
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		resp := s.HandleContext(r.Context(), Request{Op: OpPing})
		setRetryAfter(w, resp)
		writeJSON(w, statusFor(resp), resp)
	})
	mux.HandleFunc("/v1/enroll", s.httpOp(OpEnroll))
	mux.HandleFunc("/v1/login", s.httpOp(OpLogin))
	mux.HandleFunc("/v1/change", s.httpOp(OpChange))
	mux.HandleFunc("/v1/validate", s.httpOp(OpValidate))
	return mux
}

// AdminHandler exposes the operator surface — separate from the
// public HTTPHandler so deployments can bind it to a loopback or
// otherwise protected listener:
//
//	POST /v1/reset  {"user": ...}   clear an account's lockout
//	GET  /metrics                   Prometheus text exposition
//	GET  /metrics.json              the same registry as JSON
//
// Routes added with RegisterAdmin (pwserver's replication promote and
// shard reopen) are mounted alongside; RegisterMetrics writers are
// appended to the /metrics exposition.
//
// Reset requests run through the same pipeline as everything else
// (admitted, counted, deadline-bounded).
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reset", s.httpOp(OpReset))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.WritePrometheus(w)
		for _, f := range s.extraMetrics {
			f(w)
		}
	})
	mux.Handle("/metrics.json", s.metrics.Handler())
	for pattern, h := range s.adminRoutes {
		mux.Handle(pattern, h)
	}
	return mux
}

// RegisterAdmin mounts h at pattern on handlers returned by later
// AdminHandler calls. It is the hook pwserver uses to expose
// replication operations (failover promote, supervised shard reopen)
// on the protected admin listener without this package importing the
// replication layer. Call before AdminHandler; not safe to call
// concurrently with it.
func (s *Server) RegisterAdmin(pattern string, h http.Handler) {
	if s.adminRoutes == nil {
		s.adminRoutes = make(map[string]http.Handler)
	}
	s.adminRoutes[pattern] = h
}

// ReloadLockouts re-adopts persisted failed-attempt counters from the
// store (max-wins; see authsvc.Service.ReloadLockouts). pwserver
// calls it when a follower is promoted to primary, so counters that
// arrived over replication start gating logins on the new primary.
func (s *Server) ReloadLockouts() { s.svc.ReloadLockouts() }

// RegisterMetrics appends f's output to the Prometheus exposition
// served at /metrics on the admin surface — vault shard health,
// replication role and lag, anything the serving pipeline itself
// cannot see. Call before AdminHandler; not safe to call concurrently
// with it.
func (s *Server) RegisterMetrics(f func(io.Writer)) {
	s.extraMetrics = append(s.extraMetrics, f)
}

// decodeHTTPRequest decodes one HTTP/JSON request body into the wire
// request for op. It is the whole HTTP decode path — shared by the
// handler, the fuzzer, and the TCP/HTTP round-trip property test — so
// the two transports cannot drift in how they read a request.
func decodeHTTPRequest(op Op, body io.Reader) (Request, error) {
	var req Request
	dec := json.NewDecoder(io.LimitReader(body, MaxFrame+1))
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("authproto: malformed request body: %w", err)
	}
	// Exactly one JSON value, like a TCP frame: json.Unmarshal on a
	// frame body rejects trailing bytes, so the streaming decoder must
	// too or the transports drift.
	if _, err := dec.Token(); err != io.EOF {
		return Request{}, fmt.Errorf("authproto: trailing data after request body")
	}
	req.Op = op
	return req, nil
}

func (s *Server) httpOp(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, Response{Error: "POST required"})
			return
		}
		req, err := decodeHTTPRequest(op, http.MaxBytesReader(w, r.Body, MaxFrame))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: "malformed request body"})
			return
		}
		resp := s.HandleContext(r.Context(), req)
		setRetryAfter(w, resp)
		writeJSON(w, statusFor(resp), resp)
	}
}

// setRetryAfter surfaces an overload shed's retry hint as the
// standard Retry-After header (whole seconds, rounded up so "500ms"
// does not become "retry immediately").
func setRetryAfter(w http.ResponseWriter, resp Response) {
	if authsvc.Code(resp.Code) != authsvc.CodeOverloaded || resp.RetryAfterMs <= 0 {
		return
	}
	secs := (resp.RetryAfterMs + 999) / 1000
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// statusFor maps a typed service outcome to its HTTP status.
func statusFor(resp Response) int {
	switch authsvc.Code(resp.Code) {
	case authsvc.CodeOK:
		return http.StatusOK
	case authsvc.CodeLocked, authsvc.CodeThrottled:
		return http.StatusTooManyRequests
	case authsvc.CodeDenied:
		return http.StatusUnauthorized
	case authsvc.CodeExists:
		return http.StatusConflict
	case authsvc.CodeUnavailable, authsvc.CodeOverloaded:
		return http.StatusServiceUnavailable
	case authsvc.CodeNotPrimary:
		// 421: this server cannot produce an authoritative response;
		// the body's primary field says who can.
		return http.StatusMisdirectedRequest
	case authsvc.CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

package authsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
)

func testConfig(t *testing.T, iterations int) passpoints.Config {
	t.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	return passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: iterations,
	}
}

func testService(t *testing.T, lockout int) *Service {
	t.Helper()
	svc, err := NewService(testConfig(t, 2), vault.New(), lockout)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func clicks(dx int) []dataset.Click {
	return []dataset.Click{
		{X: 30 + dx, Y: 40}, {X: 120 + dx, Y: 300}, {X: 222 + dx, Y: 51},
		{X: 400 + dx, Y: 200}, {X: 77 + dx, Y: 160},
	}
}

func TestServiceCodes(t *testing.T) {
	svc := testService(t, 2)
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
		want Code
	}{
		{"ping", Request{Op: OpPing}, CodeOK},
		{"unknown op", Request{Op: "bogus"}, CodeInvalid},
		{"enroll no user", Request{Op: OpEnroll, Clicks: clicks(0)}, CodeInvalid},
		{"enroll", Request{Op: OpEnroll, User: "a", Clicks: clicks(0)}, CodeOK},
		{"enroll dup", Request{Op: OpEnroll, User: "a", Clicks: clicks(0)}, CodeExists},
		{"login ok", Request{Op: OpLogin, User: "a", Clicks: clicks(3)}, CodeOK},
		{"login wrong", Request{Op: OpLogin, User: "a", Clicks: clicks(9)}, CodeDenied},
		{"login locks", Request{Op: OpLogin, User: "a", Clicks: clicks(9)}, CodeLocked},
		{"login locked out", Request{Op: OpLogin, User: "a", Clicks: clicks(3)}, CodeLocked},
		{"reset", Request{Op: OpReset, User: "a"}, CodeOK},
		{"login after reset", Request{Op: OpLogin, User: "a", Clicks: clicks(3)}, CodeOK},
		{"future version", Request{Version: Version + 1, Op: OpPing}, CodeInvalid},
		{"explicit v1", Request{Version: 1, Op: OpPing}, CodeOK},
	}
	for _, tc := range cases {
		resp := svc.Handle(ctx, tc.req)
		if resp.Code != tc.want {
			t.Errorf("%s: code = %q (%q), want %q", tc.name, resp.Code, resp.Err, tc.want)
		}
		if resp.Version != Version {
			t.Errorf("%s: response version = %d, want %d", tc.name, resp.Version, Version)
		}
	}
}

func TestServiceChange(t *testing.T) {
	svc := testService(t, 3)
	ctx := context.Background()
	svc.Handle(ctx, Request{Op: OpEnroll, User: "c", Clicks: clicks(0)})
	if resp := svc.Handle(ctx, Request{Op: OpChange, User: "c", Clicks: clicks(9), NewClicks: clicks(40)}); resp.Code != CodeDenied {
		t.Fatalf("change with wrong old password: %+v", resp)
	}
	if resp := svc.Handle(ctx, Request{Op: OpChange, User: "c", Clicks: clicks(0), NewClicks: clicks(40)}); !resp.OK() {
		t.Fatalf("change: %+v", resp)
	}
	if resp := svc.Handle(ctx, Request{Op: OpLogin, User: "c", Clicks: clicks(0)}); resp.OK() {
		t.Error("old password still accepted after change")
	}
	if resp := svc.Handle(ctx, Request{Op: OpLogin, User: "c", Clicks: clicks(40)}); !resp.OK() {
		t.Errorf("new password rejected after change: %+v", resp)
	}
}

// TestUnknownUserIndistinguishable is the user-enumeration pin: an
// unknown user and a wrong password must produce byte-identical
// response bodies (same code, same error, same remaining budget) at
// every attempt stage, through lockout.
func TestUnknownUserIndistinguishable(t *testing.T) {
	svc := testService(t, 3)
	ctx := context.Background()
	svc.Handle(ctx, Request{Op: OpEnroll, User: "real", Clicks: clicks(0)})
	for i := 0; i < 4; i++ {
		wrongPW := svc.Handle(ctx, Request{Op: OpLogin, User: "real", Clicks: clicks(9)})
		unknown := svc.Handle(ctx, Request{Op: OpLogin, User: "ghost", Clicks: clicks(9)})
		a, err := json.Marshal(wrongPW)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(unknown)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("attempt %d: bodies differ: real=%s ghost=%s", i, a, b)
		}
	}
}

// TestUnknownUserTimingEquivalent: the unknown-user path must do the
// same hash work as a wrong password (a digest compare against the
// dummy record), so response timing cannot enumerate users. With a
// deliberately heavy iteration count the hash dominates, and the two
// paths' medians must be within a wide factor of each other — wide
// enough to hold on noisy CI, tight enough to catch the old fast-path
// (which skipped hashing entirely and was ~1000x faster at this
// setting).
func TestUnknownUserTimingEquivalent(t *testing.T) {
	svc, err := NewService(testConfig(t, 20000), vault.New(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if resp := svc.Handle(ctx, Request{Op: OpEnroll, User: "real", Clicks: clicks(0)}); !resp.OK() {
		t.Fatalf("enroll: %+v", resp)
	}
	median := func(user string) time.Duration {
		var times []time.Duration
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			svc.Handle(ctx, Request{Op: OpLogin, User: user, Clicks: clicks(9)})
			times = append(times, time.Since(t0))
		}
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[len(times)/2]
	}
	known := median("real")
	ghost := median("ghost")
	if ghost*8 < known || known*8 < ghost {
		t.Errorf("timing oracle: wrong-password median %v vs unknown-user median %v", known, ghost)
	}
}

func TestNewServiceValidation(t *testing.T) {
	cfg := testConfig(t, 2)
	if _, err := NewService(cfg, nil, 0); err == nil {
		t.Error("nil store accepted")
	}
	bad := cfg
	bad.Scheme = nil
	if _, err := NewService(bad, vault.New(), 0); err == nil {
		t.Error("invalid config accepted")
	}
	svc, err := NewService(cfg, vault.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Lockout() != DefaultLockout {
		t.Errorf("default lockout = %d", svc.Lockout())
	}
}

// TestDummyRecordNotStored: the timing-equalization record must never
// leak into the vault as an account.
func TestDummyRecordNotStored(t *testing.T) {
	store := vault.New()
	if _, err := NewService(testConfig(t, 2), store, 0); err != nil {
		t.Fatal(err)
	}
	if n := store.Len(); n != 0 {
		t.Errorf("service construction stored %d records", n)
	}
}

func TestExpiredContextRefused(t *testing.T) {
	svc := testService(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := svc.Handle(ctx, Request{Op: OpPing})
	if resp.Code != CodeUnavailable {
		t.Errorf("expired ctx: code = %q, want %q", resp.Code, CodeUnavailable)
	}
}

// TestFailureSweepPreservesLockouts: when the failed-attempt map hits
// its cap, sub-lockout counters are evicted (bounding memory under a
// ghost-name flood) but locked accounts must survive the sweep — a
// flood cannot lift an existing lockout.
func TestFailureSweepPreservesLockouts(t *testing.T) {
	svc := testService(t, 3)
	svc.mu.Lock()
	svc.failures["locked-victim"] = 3
	for i := 0; i < 100; i++ {
		svc.failures[fmt.Sprintf("ghost-%d", i)] = 1
	}
	svc.sweepFailures()
	kept := len(svc.failures)
	locked := svc.failures["locked-victim"]
	svc.mu.Unlock()
	if kept != 1 || locked != 3 {
		t.Errorf("after sweep: %d entries, victim counter %d; want only the locked account, untouched", kept, locked)
	}
	// The locked account still refuses logins after the sweep.
	resp := svc.Handle(context.Background(), Request{Op: OpLogin, User: "locked-victim", Clicks: clicks(0)})
	if resp.Code != CodeLocked {
		t.Errorf("locked account after sweep: %+v", resp)
	}
}

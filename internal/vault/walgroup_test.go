package vault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clickpass/internal/passpoints"
)

// faultFile wraps a real walFile with injectable failures: each op
// consults its hook (when set) before delegating. The hooks are
// shared across every file the store opens, so a test scripts one
// controller and sees it applied to whichever shard log is hit.
type faultFile struct {
	walFile
	ctl *faultCtl
}

type faultCtl struct {
	writeErr func() error // consulted before each Write
	syncErr  func() error // consulted before each Sync
	truncErr func() error // consulted before each Truncate
	seekErr  func() error // consulted before each Seek
	syncGate chan struct{} // when non-nil, Sync blocks until it closes
	entered  atomic.Int64  // Sync calls begun (gated ones count immediately)
	syncs    atomic.Int64  // Sync calls that reached the real file
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.ctl.writeErr != nil {
		if err := f.ctl.writeErr(); err != nil {
			return 0, err
		}
	}
	return f.walFile.Write(p)
}

func (f *faultFile) Sync() error {
	if f.ctl.syncErr != nil {
		if err := f.ctl.syncErr(); err != nil {
			return err
		}
	}
	f.ctl.entered.Add(1)
	if gate := f.ctl.syncGate; gate != nil {
		<-gate
	}
	f.ctl.syncs.Add(1)
	return f.walFile.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if f.ctl.truncErr != nil {
		if err := f.ctl.truncErr(); err != nil {
			return err
		}
	}
	return f.walFile.Truncate(size)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if f.ctl.seekErr != nil {
		if err := f.ctl.seekErr(); err != nil {
			return 0, err
		}
	}
	return f.walFile.Seek(offset, whence)
}

// openFaulty opens a durable store whose shard logs all route through
// ctl's hooks.
func openFaulty(t *testing.T, dir string, opts DurableOptions, ctl *faultCtl) *Durable {
	t.Helper()
	d, err := openDurable(dir, opts, func(path string) (walFile, error) {
		f, err := defaultOpenFile(path)
		if err != nil {
			return nil, err
		}
		return &faultFile{walFile: f, ctl: ctl}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// failAfter returns a hook erroring on call n (1-based) and passing
// every other call.
func failAfter(n int64, err error) func() error {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) == n {
			return err
		}
		return nil
	}
}

// versionedRecord builds a record whose digest encodes (user, version)
// so recovered state identifies exactly which write survived.
func versionedRecord(user string, version int) *passpoints.Record {
	return &passpoints.Record{
		User: user, Kind: passpoints.KindCentered,
		SquareSidePx: 13, Iterations: 2,
		Salt:   []byte{0xA5, byte(version), byte(version >> 8)},
		Digest: []byte(fmt.Sprintf("%s#%06d", user, version)),
	}
}

// recordVersion parses versionedRecord's digest back, failing the test
// on a digest no writer ever produced (a corrupt or fabricated record).
func recordVersion(t *testing.T, trial string, rec *passpoints.Record) int {
	t.Helper()
	i := strings.LastIndexByte(string(rec.Digest), '#')
	if i < 0 {
		t.Fatalf("%s: recovered record %q has non-writer digest %q", trial, rec.User, rec.Digest)
	}
	v, err := strconv.Atoi(string(rec.Digest[i+1:]))
	if err != nil {
		t.Fatalf("%s: recovered record %q has non-writer digest %q", trial, rec.User, rec.Digest)
	}
	return v
}

// TestGroupCommitTorture is the concurrent version of the torture
// tests: N writers hammer one shard log under SyncAlways (so their
// appends coalesce into group commits), each recording the log size
// observed right after its ack — an upper bound on the offset below
// which that version is durable, because the ack means a shared fsync
// covered it. Then the log is torn at random byte offsets and
// reopened: for every writer, the recovered version must be at least
// the newest version whose ack-time bound lies below the tear (no
// false rejects of acked writes), and every recovered digest must be
// one some writer actually produced (no fabricated state).
func TestGroupCommitTorture(t *testing.T) {
	const (
		writers  = 6
		versions = 40
	)
	dir := t.TempDir()
	opts := DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true}
	d, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, shardLogName(0))
	// ackEnd[w][v] = file size observed after version v's ack. Writes
	// from other writers may land between the ack and the Stat, so the
	// bound is conservative — exactly what the assertion needs.
	ackEnd := make([][]int64, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		ackEnd[w] = make([]int64, versions)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", w)
			for v := 0; v < versions; v++ {
				if err := d.Replace(versionedRecord(user, v)); err != nil {
					errs <- fmt.Errorf("writer %d version %d: %w", w, v, err)
					return
				}
				st, err := os.Stat(logPath)
				if err != nil {
					errs <- err
					return
				}
				ackEnd[w][v] = st.Size()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	tears := []int64{0, 3, walHeaderSize, full.Size() - 1, full.Size()}
	for i := 0; i < 12; i++ {
		tears = append(tears, rng.Int63n(full.Size()+1))
	}
	for _, tearAt := range tears {
		trial := fmt.Sprintf("tear@%d", tearAt)
		cdir := t.TempDir()
		copyDir(t, dir, cdir)
		if err := os.Truncate(filepath.Join(cdir, shardLogName(0)), tearAt); err != nil {
			t.Fatal(err)
		}
		back, err := OpenDurable(cdir, opts)
		if err != nil {
			t.Fatalf("%s: reopen: %v", trial, err)
		}
		for w := 0; w < writers; w++ {
			user := fmt.Sprintf("user-%d", w)
			floor := -1
			for v := 0; v < versions; v++ {
				if ackEnd[w][v] <= tearAt {
					floor = v
				}
			}
			rec, err := back.Get(user)
			if err != nil {
				if floor >= 0 {
					t.Errorf("%s: %s acked through version %d but lost entirely (false reject)", trial, user, floor)
				}
				continue
			}
			got := recordVersion(t, trial, rec)
			if got < floor {
				t.Errorf("%s: %s recovered at version %d, acked through %d below the tear (false reject)", trial, user, got, floor)
			}
			if got >= versions {
				t.Errorf("%s: %s recovered at version %d, never written (false accept)", trial, user, got)
			}
		}
		back.Close()
	}
}

// TestGroupCommitBatchFailure injects one failing fsync under
// concurrent SyncAlways load and asserts the whole failure contract:
// every writer whose record rode the failed batch gets an error (zero
// false acks), the shard's in-memory maps roll back to the acked
// prefix, the shard sticks at ErrShardFailed for every later mutation
// (the fsyncgate rule: after one failed fsync, no later fsync result
// can prove durability) while reads keep working, and a restart
// recovers exactly the acked writes.
func TestGroupCommitBatchFailure(t *testing.T) {
	const writers = 8
	injected := errors.New("injected fsync failure")
	ctl := &faultCtl{syncErr: failAfter(10, injected)}
	dir := t.TempDir()
	d := openFaulty(t, dir, DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true}, ctl)

	// lastAcked[w] is the newest version whose Replace returned nil.
	lastAcked := make([]atomic.Int64, writers)
	sawFailure := atomic.Bool{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		lastAcked[w].Store(-1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", w)
			for v := 0; v < 200; v++ {
				if err := d.Replace(versionedRecord(user, v)); err != nil {
					sawFailure.Store(true)
					return
				}
				lastAcked[w].Store(int64(v))
			}
		}(w)
	}
	wg.Wait()
	if !sawFailure.Load() {
		t.Fatal("no writer observed the injected fsync failure")
	}

	// Sticky refusal: every further mutation fails with ErrShardFailed.
	if err := d.Replace(versionedRecord("user-0", 999)); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("mutation after failed fsync: got %v, want ErrShardFailed", err)
	}
	if err := d.SetLockout("user-0", 3); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("lockout write after failed fsync: got %v, want ErrShardFailed", err)
	}

	// Reads still serve the acked state, and the failed batch's map
	// updates were rolled back: nothing newer than the acked version.
	for w := 0; w < writers; w++ {
		user := fmt.Sprintf("user-%d", w)
		acked := int(lastAcked[w].Load())
		rec, err := d.Get(user)
		if err != nil {
			if acked >= 0 {
				t.Errorf("in-memory: %s acked through %d but missing: %v", user, acked, err)
			}
			continue
		}
		if got := recordVersion(t, "in-memory", rec); got != acked {
			t.Errorf("in-memory: %s at version %d, want last acked %d (failed batch not rolled back)", user, got, acked)
		}
	}

	// Restart (real files, no injection): the log holds exactly the
	// acked prefix — failStop truncated the failed batch's bytes.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDurable(dir, DurableOptions{Shards: 1, Sync: SyncAlways, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	for w := 0; w < writers; w++ {
		user := fmt.Sprintf("user-%d", w)
		acked := int(lastAcked[w].Load())
		rec, err := back.Get(user)
		if err != nil {
			if acked >= 0 {
				t.Errorf("recovered: %s acked through %d but lost (false reject): %v", user, acked, err)
			}
			continue
		}
		if got := recordVersion(t, "recovered", rec); got != acked {
			t.Errorf("recovered: %s at version %d, want exactly last acked %d", user, got, acked)
		}
	}
}

// TestWalRollback covers the failed-append rollback paths on the
// direct (non-group-commit) write path: a failed write whose rollback
// succeeds leaves the shard usable, while a rollback that cannot
// restore the committed offset — Truncate or the follow-up Seek
// failing — must fail-stop the shard instead of letting later appends
// write behind a tear. The Seek case is the regression this PR fixes:
// rollback used to ignore a failed Seek after a successful Truncate.
func TestWalRollback(t *testing.T) {
	injected := errors.New("injected failure")
	cases := []struct {
		name     string
		ctl      func() *faultCtl
		wantStop bool
	}{
		{"write-fails-rollback-succeeds", func() *faultCtl {
			return &faultCtl{writeErr: failAfter(3, injected)}
		}, false},
		// Open-time recovery (replayLog) consumes 1 Truncate and 3
		// Seeks per shard; the rollback after the failed third append
		// is therefore Truncate call 2 and Seek call 4.
		{"rollback-truncate-fails", func() *faultCtl {
			return &faultCtl{
				writeErr: failAfter(3, injected),
				truncErr: failAfter(2, injected),
			}
		}, true},
		{"rollback-seek-fails", func() *faultCtl {
			return &faultCtl{
				writeErr: failAfter(3, injected),
				seekErr:  failAfter(4, injected),
			}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := openFaulty(t, dir, DurableOptions{Shards: 1, Sync: SyncNever}, tc.ctl())
			if err := d.Put(versionedRecord("alpha", 0)); err != nil {
				t.Fatal(err)
			}
			if err := d.Replace(versionedRecord("alpha", 1)); err != nil {
				t.Fatal(err)
			}
			// Write 3 fails.
			if err := d.Replace(versionedRecord("alpha", 2)); err == nil {
				t.Fatal("injected write failure not surfaced")
			}
			err := d.Replace(versionedRecord("alpha", 3))
			if tc.wantStop {
				if !errors.Is(err, ErrShardFailed) {
					t.Fatalf("append after failed rollback: got %v, want ErrShardFailed", err)
				}
			} else if err != nil {
				t.Fatalf("append after clean rollback: %v", err)
			}
			// Either way the log must replay to a consistent prefix:
			// versions 0..1 acked, version 2 failed, version 3 only if
			// the shard stayed usable.
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			back, err := OpenDurable(dir, DurableOptions{Shards: 1, Sync: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			defer back.Close()
			rec, err := back.Get("alpha")
			if err != nil {
				t.Fatalf("acked record lost: %v", err)
			}
			want := 1
			if !tc.wantStop {
				want = 3
			}
			if got := recordVersion(t, tc.name, rec); got != want {
				t.Errorf("recovered version %d, want %d", got, want)
			}
		})
	}
}

// TestSyncLoopDoesNotBlockAppends pins the background-flush contract
// under SyncInterval: the fsync runs outside the shard lock (appends
// proceed while a sync is stuck on a slow disk), and dirty is cleared
// through a generation counter, so appends landing mid-sync keep the
// shard dirty until a later sync actually covers them.
func TestSyncLoopDoesNotBlockAppends(t *testing.T) {
	gate := make(chan struct{})
	ctl := &faultCtl{syncGate: gate}
	d := openFaulty(t, t.TempDir(),
		DurableOptions{Shards: 1, Sync: SyncInterval, SyncEvery: 5 * time.Millisecond, NoAutoCompact: true}, ctl)
	if err := d.Put(versionedRecord("alpha", 0)); err != nil {
		t.Fatal(err)
	}
	// Wait until the sync loop has actually entered the gated fsync,
	// so the appends below demonstrably race an in-flight sync.
	sh := &d.shards[0]
	deadline := time.Now().Add(5 * time.Second)
	for ctl.entered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sync never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Appends must complete while the background fsync is blocked; a
	// sync loop holding the shard lock across fsync deadlocks here.
	done := make(chan error, 1)
	go func() {
		for v := 1; v <= 5; v++ {
			if err := d.Replace(versionedRecord("alpha", v)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("appends blocked behind an in-flight background fsync")
	}
	close(gate)
	// The gated sync raced those appends, so it must NOT have cleared
	// dirty for bytes it didn't cover: the shard stays dirty until a
	// post-append sync lands, then settles clean.
	deadline = time.Now().Add(5 * time.Second)
	for {
		sh.mu.Lock()
		clean := !sh.dirty
		sh.mu.Unlock()
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never settled clean after releasing the gated sync")
		}
		time.Sleep(time.Millisecond)
	}
	if ctl.syncs.Load() < 2 {
		t.Errorf("dirty cleared after %d syncs; the mid-sync appends needed a second covering sync", ctl.syncs.Load())
	}
}

//go:build race

package loadtest

// raceSlack widens the storm smoke's latency bounds under the race
// detector: instrumentation multiplies the cost of every scheduler
// hop and HTTP round-trip, so client-observed shed/accept latencies
// are ~10x the uninstrumented numbers. The invariants (sheds happen,
// refusals beat service time, goodput holds) are unchanged — only the
// absolute clocks scale.
const raceSlack = 10

package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits should differ")
	}
	// Split determinism: rebuilding the parent reproduces the children.
	parent2 := New(7)
	d1 := parent2.Split()
	parent2.Split()
	c1b := New(11) // unrelated
	_ = c1b
	a := New(7).Split()
	if a.Uint64() != d1.Uint64() {
		t.Error("split streams are not deterministic")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %f, want ~1", variance)
	}
}

func TestNormalScaled(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormalScaled(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("scaled mean = %f, want ~5", mean)
	}
}

func TestTruncNormalBound(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(3, 4)
		if v < -4 || v > 4 {
			t.Fatalf("TruncNormal escaped bound: %f", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Error("shuffle lost elements")
	}
	same := true
	for i := range xs {
		if xs[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Error("shuffle left 10 elements in place (astronomically unlikely)")
	}
}

func TestPickWeights(t *testing.T) {
	r := New(29)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %f, want ~3", ratio)
	}
}

func TestPickPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"zero-sum": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%s) should panic", name)
				}
			}()
			New(1).Pick(weights)
		}()
	}
}

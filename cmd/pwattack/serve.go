package main

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"clickpass/internal/attack"
	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/imagegen"
	"clickpass/internal/loadtest"
	"clickpass/internal/scenario"
	"clickpass/internal/study"
)

// serveOptions collects the -serve mode's knobs.
type serveOptions struct {
	addr      string // pwserver address (host:port or http URL)
	transport string // tcp | http
	image     *imagegen.Image
	scheme    core.Scheme
	seed      uint64
	workers   int
	lockout   int // per-account guess budget; should match the server's -lockout
	cohort    int // participants to stream as victims; 0 = field study
	storm     int // concurrent legitimate clients during the attack
	stormOps  int // ops per storm client
}

// runServe is the red-team mode: instead of modeling the online attack
// in process, it enrolls the victim population into a live pwserver
// and drives the same saliency-ordered guess stream through the wire,
// reporting the compromise curve plus every defense the attacker felt
// (lockouts, throttles, sheds, redirects). In field mode the result is
// cross-checked against attack.Online — the two must agree whenever
// the server runs the same scheme, image, and lockout.
func runServe(o serveOptions) error {
	dial, err := transportFactory(o.transport, o.addr)
	if err != nil {
		return err
	}
	cfg := scenario.Config{Dial: dial, Workers: o.workers}

	// Victims: a materialized field study (with an in-process model to
	// compare against), or a streamed cohort too big to compare.
	var (
		accounts scenario.AccountStream
		field    *dataset.Dataset
	)
	if o.cohort > 0 {
		ccfg := study.DefaultCohort(o.image, o.seed)
		ccfg.Participants = o.cohort
		ccfg.Workers = o.workers
		accounts = scenario.CohortAccounts(ccfg)
		fmt.Printf("victims: streamed cohort, %d participants (never materialized)\n", o.cohort)
	} else {
		fieldCfg := study.FieldConfig(o.image, o.seed)
		fieldCfg.Workers = o.workers
		field, err = study.Run(fieldCfg)
		if err != nil {
			return err
		}
		accounts = scenario.FieldAccounts(field)
		fmt.Printf("victims: field study, %d passwords\n", len(field.Passwords))
	}

	labCfg := study.LabConfig(o.image, o.seed+100)
	labCfg.Workers = o.workers
	lab, err := study.Run(labCfg)
	if err != nil {
		return err
	}
	guesses, err := scenario.Guesses(lab, o.image, o.lockout)
	if err != nil {
		return err
	}

	start := time.Now()
	users, err := scenario.EnrollStream(cfg, accounts)
	if err != nil {
		return err
	}
	fmt.Printf("enrolled %d accounts over %s in %v\n",
		len(users), o.transport, time.Since(start).Round(time.Millisecond))

	// Optional legitimate storm concurrent with the attack: the report
	// then shows the attacker's friction under production load.
	var (
		stormRes  loadtest.StormResult
		stormErr  error
		stormDone sync.WaitGroup
	)
	if o.storm > 0 {
		legit, err := enrollLegit(cfg, o.storm)
		if err != nil {
			return err
		}
		stormDone.Add(1)
		go func() {
			defer stormDone.Done()
			stormRes, stormErr = loadtest.Storm(loadtest.StormConfig{
				Dial:         dial,
				Clients:      o.storm,
				OpsPerClient: o.stormOps,
				Request:      loadtest.AuthMix(legit, legitClicks, 10),
			})
		}()
	}

	rep, err := scenario.RedTeam(cfg, users, guesses)
	if err != nil {
		return err
	}
	stormDone.Wait()
	printReport(rep, o)
	if o.storm > 0 {
		if stormErr != nil {
			return fmt.Errorf("legit storm: %w", stormErr)
		}
		fmt.Printf("concurrent legit storm: %s\n", stormRes)
	}

	if field != nil {
		online, err := attack.Online(field, lab, o.image, o.scheme, o.lockout, o.workers)
		if err != nil {
			return err
		}
		verdict := "MATCH"
		if online.Compromised != rep.Compromised {
			verdict = "MISMATCH (is the server running the same -scheme/-side/-lockout?)"
		}
		fmt.Printf("model check: in-process attack.Online compromised %d/%d — %s\n",
			online.Compromised, online.Accounts, verdict)
	}
	return nil
}

// transportFactory maps -transport to a wire client factory.
func transportFactory(transport, addr string) (func(int) (authsvc.Client, error), error) {
	switch transport {
	case "tcp":
		return loadtest.TCPTransport(addr, 5*time.Second), nil
	case "http":
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		return loadtest.HTTPTransport(addr), nil
	default:
		return nil, fmt.Errorf("unknown transport %q (want tcp or http)", transport)
	}
}

// legitClicks is the deterministic password of storm user "legit-<n>":
// distinct per user, comfortably inside the 451x331 study image.
func legitClicks(user string) []dataset.Click {
	var n int
	fmt.Sscanf(user, "legit-%d", &n)
	dx := n % 40
	return []dataset.Click{
		{X: 31 + dx, Y: 41}, {X: 121 + dx, Y: 301}, {X: 223 + dx, Y: 52},
		{X: 401 + dx, Y: 201}, {X: 78 + dx, Y: 161},
	}
}

// enrollLegit registers the storm population.
func enrollLegit(cfg scenario.Config, n int) ([]string, error) {
	return scenario.EnrollStream(cfg, func(emit func(string, []dataset.Click) error) error {
		for i := 0; i < n; i++ {
			user := fmt.Sprintf("legit-%d", i)
			if err := emit(user, legitClicks(user)); err != nil {
				return err
			}
		}
		return nil
	})
}

// printReport renders the red-team run: the compromise curve first
// (the science), then the friction columns (the serving stack's
// resistance as the attacker experienced it).
func printReport(rep *scenario.Report, o serveOptions) {
	pct := 0.0
	if rep.Accounts > 0 {
		pct = 100 * float64(rep.Compromised) / float64(rep.Accounts)
	}
	fmt.Printf("red team (%d-guess budget, %d workers, %s): %d/%d accounts compromised (%.1f%%) in %v\n",
		rep.Guesses, o.workers, o.transport, rep.Compromised, rep.Accounts, pct,
		rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("  curve (cumulative compromised by guess depth):")
	for k, c := range rep.Curve {
		fmt.Printf(" %d:%d", k+1, c)
	}
	fmt.Println()
	fmt.Printf("  defenses felt: denied=%d locked=%d throttled=%d resent=%d incomplete=%d\n",
		rep.Denied, rep.Locked, rep.Throttled, rep.Resent, rep.Incomplete)
	fmt.Printf("  wire: calls=%d retries=%d overloaded=%d redirects=%d breaker_opens=%d fast_fails=%d\n",
		rep.Wire.Calls, rep.Wire.Retries, rep.Wire.Overloaded, rep.Wire.Redirects,
		rep.Wire.BreakerOpens, rep.Wire.BreakerFastFails)
	definitive := rep.Denied + int64(rep.Locked) + int64(rep.Compromised)
	goodput := 0.0
	if rep.Elapsed > 0 {
		goodput = float64(definitive) / rep.Elapsed.Seconds()
	}
	fmt.Printf("  latency p50=%v p99=%v max=%v; attacker goodput %.0f definitive answers/s\n",
		rep.P50, rep.P99, rep.MaxLatency, goodput)
}

package vault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// reopen closes d and opens the same directory again with the same
// options — the clean-restart path every recovery test leans on.
func reopen(t *testing.T, d *Durable) *Durable {
	t.Helper()
	dir, opts := d.Dir(), d.opts
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { back.Close() })
	return back
}

// TestDurableReopen: every mutation class — put, replace, delete,
// lockout set and clear — must survive a close/reopen cycle.
func TestDurableReopen(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			d := openDurableT(t, DurableOptions{Shards: 4, Sync: policy})
			for i := 0; i < 20; i++ {
				if err := d.Put(testRecord(t, fmt.Sprintf("u-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			repl := testRecord(t, "u-3")
			if err := d.Replace(repl); err != nil {
				t.Fatal(err)
			}
			d.Delete("u-7")
			if err := d.SetLockout("u-1", 4); err != nil {
				t.Fatal(err)
			}
			if err := d.SetLockout("u-2", 9); err != nil {
				t.Fatal(err)
			}
			if err := d.SetLockout("u-2", 0); err != nil { // cleared
				t.Fatal(err)
			}

			back := reopen(t, d)
			if back.Len() != 19 {
				t.Fatalf("reopened Len = %d, want 19", back.Len())
			}
			if _, err := back.Get("u-7"); !errors.Is(err, ErrNotFound) {
				t.Errorf("deleted user resurrected: %v", err)
			}
			got, err := back.Get("u-3")
			if err != nil || string(got.Salt) != string(repl.Salt) {
				t.Errorf("replace lost on reopen: %v %v", got, err)
			}
			locks := back.Lockouts()
			if len(locks) != 1 || locks["u-1"] != 4 {
				t.Errorf("lockouts after reopen = %v, want map[u-1:4]", locks)
			}
		})
	}
}

// TestDurableJSONInterop: SaveTo must emit the canonical snapshot the
// other backends read, and ImportJSON must load one — byte-identical
// round trips in both directions.
func TestDurableJSONInterop(t *testing.T) {
	dir := t.TempDir()
	d := openDurableT(t, DurableOptions{Shards: 4})
	for i := 0; i < 12; i++ {
		if err := d.Put(testRecord(t, fmt.Sprintf("user-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := filepath.Join(dir, "snap.json")
	if err := d.SaveTo(snap); err != nil {
		t.Fatal(err)
	}
	v, err := Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 12 {
		t.Fatalf("vault read %d records from durable snapshot, want 12", v.Len())
	}

	// JSON -> durable (the pwserver migration path), and back out:
	// the canonical encoding must be reproduced byte for byte.
	d2 := openDurableT(t, DurableOptions{Shards: 7})
	if err := d2.ImportJSON(snap); err != nil {
		t.Fatal(err)
	}
	if err := d2.ImportJSON(snap); err == nil {
		t.Error("ImportJSON into non-empty store should fail")
	}
	out := filepath.Join(dir, "out.json")
	if err := d2.SaveTo(out); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("durable snapshot is not canonical across backends")
	}
	// Importing a missing file is an empty store, like Open.
	d3 := openDurableT(t, DurableOptions{Shards: 2})
	if err := d3.ImportJSON(filepath.Join(dir, "nope.json")); err != nil {
		t.Errorf("ImportJSON of missing file: %v", err)
	}
}

// TestDurableCompaction: churn must shrink under Compact without
// losing live state, and the compacted log must replay.
func TestDurableCompaction(t *testing.T) {
	d := openDurableT(t, DurableOptions{Shards: 1, NoAutoCompact: true})
	rec := testRecord(t, "churn")
	if err := d.Put(rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := d.Replace(rec); err != nil {
			t.Fatal(err)
		}
		if err := d.SetLockout("locked", 1+i%9); err != nil {
			t.Fatal(err)
		}
	}
	logPath := filepath.Join(d.Dir(), shardLogName(0))
	before, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size()/10 {
		t.Errorf("compaction barely shrank the log: %d -> %d bytes", before.Size(), after.Size())
	}
	// The store must stay fully usable after the file swap...
	if err := d.Put(testRecord(t, "after-compact")); err != nil {
		t.Fatal(err)
	}
	// ...and the compacted+appended log must replay.
	back := reopen(t, d)
	if back.Len() != 2 {
		t.Errorf("post-compaction reopen Len = %d, want 2", back.Len())
	}
	if locks := back.Lockouts(); locks["locked"] == 0 {
		t.Errorf("lockout counter lost in compaction: %v", locks)
	}
}

// TestDurableAutoCompact: enough churn must trigger the background
// compactor on its own. The compactor runs concurrently with the
// writer, so the test watches for the telltale a log rewrite leaves —
// the file getting *smaller* between two measurements — rather than a
// final size (the writer keeps regrowing the log after each rewrite).
func TestDurableAutoCompact(t *testing.T) {
	d := openDurableT(t, DurableOptions{Shards: 1, CompactRatio: 1.5})
	rec := testRecord(t, "churn")
	if err := d.Put(rec); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(d.Dir(), shardLogName(0))
	prev := int64(0)
	deadline := time.Now().Add(10 * time.Second)
	for shrunk := false; !shrunk; {
		for i := 0; i < 64; i++ {
			if err := d.Replace(rec); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond) // let a pending kick run
		st, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() < prev {
			shrunk = true // only a compaction rewrite shrinks the log
		}
		prev = st.Size()
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never rewrote the log (grew to %d bytes)", prev)
		}
	}
	if _, err := d.Get("churn"); err != nil {
		t.Errorf("record lost to auto-compaction: %v", err)
	}
}

// TestDurableShardCountPinned: the shard count is fixed at directory
// creation (meta.json); reopening with a different request keeps the
// on-disk partitioning — a record's log is hash mod Shards, so
// honoring a new modulus would strand records — and loses nothing.
func TestDurableShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := d.Put(testRecord(t, fmt.Sprintf("u-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SetLockout("u-11", 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, request := range []int{2, 16} {
		back, err := OpenDurable(dir, DurableOptions{Shards: request})
		if err != nil {
			t.Fatal(err)
		}
		if back.Shards() != 8 {
			t.Errorf("requested %d shards, got %d, want the pinned 8", request, back.Shards())
		}
		if back.Len() != 40 {
			t.Fatalf("reopen with %d requested shards: Len = %d, want 40", request, back.Len())
		}
		for i := 0; i < 40; i++ {
			if _, err := back.Get(fmt.Sprintf("u-%d", i)); err != nil {
				t.Errorf("u-%d lost: %v", i, err)
			}
		}
		if locks := back.Lockouts(); locks["u-11"] != 3 {
			t.Errorf("lockout lost: %v", locks)
		}
		if err := back.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A directory with logs but no meta.json must be refused, not
	// silently re-partitioned.
	if err := os.Remove(filepath.Join(dir, "meta.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, DurableOptions{Shards: 8}); err == nil {
		t.Error("OpenDurable accepted a log directory without meta.json")
	}
}

// TestDurableClosedStoreRefusesWrites pins the Close contract.
func TestDurableClosedStoreRefusesWrites(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := d.Put(testRecord(t, "late")); err == nil {
		t.Error("Put on closed store should fail")
	}
	if err := d.SetLockout("late", 1); err == nil {
		t.Error("SetLockout on closed store should fail")
	}
}

// TestParseSyncPolicy covers the flag round trip.
func TestParseSyncPolicy(t *testing.T) {
	for _, want := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(want.String())
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestDurableConcurrentStress is the -race lane's coverage for the
// log-backed store: concurrent puts, replaces, deletes, lockout
// writes, reads, snapshots, JSON exports, and manual compactions.
func TestDurableConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	d := openDurableT(t, DurableOptions{Shards: 8, Sync: SyncNever, CompactRatio: 1})
	rec := testRecord(t, "seed")
	if err := d.Put(rec); err != nil {
		t.Fatal(err)
	}
	const (
		workers = 16
		iters   = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := *rec
			mine.User = fmt.Sprintf("w%d", w)
			for i := 0; i < iters; i++ {
				switch i % 6 {
				case 0:
					_ = d.Replace(&mine)
				case 1:
					_, _ = d.Get(mine.User)
					_, _ = d.Get("seed")
				case 2:
					_ = d.Len()
					_ = len(d.Snapshot())
					_ = d.Lockouts()
				case 3:
					if w%4 == 0 {
						if err := d.SaveTo(filepath.Join(dir, fmt.Sprintf("snap-%d.json", w))); err != nil {
							t.Error(err)
						}
					} else {
						_ = d.SetLockout(mine.User, i)
					}
				case 4:
					d.Delete(mine.User)
				case 5:
					if w == 0 {
						if err := d.CompactShard(i % d.Shards()); err != nil {
							t.Error(err)
						}
					} else {
						_ = d.Save()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := d.Get("seed"); err != nil {
		t.Errorf("seed record lost during stress: %v", err)
	}
	// After the dust settles the log must still replay to exactly the
	// live state.
	want := map[string]bool{}
	for _, u := range d.Users() {
		want[u] = true
	}
	back := reopen(t, d)
	if back.Len() != len(want) {
		t.Errorf("replay Len = %d, want %d", back.Len(), len(want))
	}
	for u := range want {
		if _, err := back.Get(u); err != nil {
			t.Errorf("user %s lost in replay: %v", u, err)
		}
	}
}

package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clickpass/internal/authproto"
	"clickpass/internal/authsvc"
	"clickpass/internal/core"
	"clickpass/internal/geom"
	"clickpass/internal/passpoints"
	"clickpass/internal/vault"
	"clickpass/internal/vault/repl"
)

// newAuthServer builds an authproto server over the store with the
// shared loadtest scheme, leaving transports for the caller to mount.
func newAuthServer(tb testing.TB, store vault.Store) *authproto.Server {
	tb.Helper()
	scheme, err := core.NewCentered(13)
	if err != nil {
		tb.Fatal(err)
	}
	srv, err := authproto.NewServer(passpoints.Config{
		Image:      geom.Size{W: 451, H: 331},
		Clicks:     5,
		Scheme:     scheme,
		Iterations: 2,
	}, store, 1<<30)
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// TestLoadRedirect421Swarm covers the not_primary redirect path under
// concurrent swarm load: a write-only swarm aimed at a follower's
// HTTP front gets a 421 per connection, the RetryClient follows the
// advertised primary exactly once, and every subsequent write lands
// directly on the primary — zero errors, zero breaker charges. The
// raw HTTP status (421 Misdirected Request with the primary in the
// body) is pinned separately, since the swarm only sees the decoded
// code.
func TestLoadRedirect421Swarm(t *testing.T) {
	clientCount, ops := 8, 8
	if testing.Short() {
		clientCount, ops = 4, 4
	}
	open := func() *vault.Durable {
		d, err := vault.OpenDurable(t.TempDir(), vault.DurableOptions{Shards: 4, NoAutoCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	pst, fst := open(), open()

	// The primary's client-facing TCP front must exist before the repl
	// node advertises it, so listen first and serve onto it later.
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primaryAddr := pl.Addr().String()
	p, err := repl.New(pst, repl.RolePrimary, repl.Options{
		Listen:        "127.0.0.1:0",
		Ack:           repl.AckQuorum,
		QuorumTimeout: 10 * time.Second,
		Advertise:     primaryAddr,
		Logf:          func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := repl.New(fst, repl.RoleFollower, repl.Options{
		Primary: p.ReplAddr(),
		Logf:    func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	psrv := newAuthServer(t, p)
	pdone := make(chan struct{})
	go func() { _ = psrv.Serve(pl); close(pdone) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := psrv.Shutdown(ctx); err != nil {
			t.Errorf("primary shutdown: %v", err)
		}
		<-pdone
	}()
	fsrv := newAuthServer(t, f)
	fts := httptest.NewServer(fsrv.HTTPHandler())
	defer fts.Close()

	users := enrollUsers(t, primaryAddr, clientCount)

	// Pin the raw wire shape first: a write against the follower's
	// HTTP front answers 421 with the primary's address in the body.
	body, err := json.Marshal(authproto.Request{
		Op: authproto.OpChange, User: users[0],
		Clicks: userClicks(users[0]), NewClicks: userClicks(users[0]),
	})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := http.Post(fts.URL+"/v1/change", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var wire authproto.Response
	if err := json.NewDecoder(hres.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower write answered HTTP %d, want 421", hres.StatusCode)
	}
	if wire.Code != string(authsvc.CodeNotPrimary) || wire.Primary != primaryAddr {
		t.Fatalf("follower 421 body = code %q primary %q, want %q/%q",
			wire.Code, wire.Primary, authsvc.CodeNotPrimary, primaryAddr)
	}

	// Now the swarm: every op is a password change (writePeriod 1), so
	// every client's first request bounces off the follower with
	// not_primary and must be transparently re-aimed at the primary.
	retryClients := make([]*authsvc.RetryClient, clientCount)
	res, err := Run(Config{
		Dial: func(i int) (authsvc.Client, error) {
			inner, err := HTTPTransport(fts.URL)(i)
			if err != nil {
				return nil, err
			}
			rc := authsvc.NewRetryClient(inner, authsvc.RetryPolicy{
				Redirect: func(addr string) (authsvc.Client, error) {
					return authproto.DialService(addr, 5*time.Second)
				},
			})
			retryClients[i] = rc
			return rc, nil
		},
		Clients:      clientCount,
		OpsPerClient: ops,
		Request:      AuthMix(users, userClicks, 1),
		Check:        RequireOK,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("redirect swarm: %s", res)
	if res.Errors != 0 {
		t.Errorf("swarm saw %d errors through the redirect path", res.Errors)
	}
	if res.Ops != clientCount*ops {
		t.Errorf("completed %d ops, want %d", res.Ops, clientCount*ops)
	}
	for i, rc := range retryClients {
		s := rc.Stats()
		if s.Redirects != 1 {
			t.Errorf("client %d followed %d redirects, want exactly 1", i, s.Redirects)
		}
		// A not_primary refusal is routing, not server health: the
		// breaker must never be charged for it.
		if s.BreakerOpens != 0 || s.BreakerFastFails != 0 {
			t.Errorf("client %d breaker charged (opens=%d fastFails=%d) by redirects",
				i, s.BreakerOpens, s.BreakerFastFails)
		}
	}
}

package authproto

import (
	"bytes"
	"testing"

	"clickpass/internal/dataset"
)

// FuzzReadFrame: arbitrary bytes from the network must never panic the
// frame reader; they either parse as a request or return an error.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	if err := writeFrame(&good, Request{Op: OpPing}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = readFrame(bytes.NewReader(data), &req)
	})
}

// FuzzHandle: arbitrary decoded requests must never panic the server.
func FuzzHandle(f *testing.F) {
	f.Add("login", "alice", 10, 20)
	f.Add("enroll", "", -5, 900)
	f.Add("weird", "x", 0, 0)
	f.Fuzz(func(t *testing.T, op, user string, x, y int) {
		srv := fuzzServer(t)
		req := Request{Op: Op(op), User: user}
		for i := 0; i < 5; i++ {
			req.Clicks = append(req.Clicks, clickAt(x+i, y-i))
		}
		_ = srv.Handle(req)
	})
}

func fuzzServer(t *testing.T) *Server {
	t.Helper()
	return testServer(t, 3)
}

func clickAt(x, y int) dataset.Click { return dataset.Click{X: x, Y: y} }

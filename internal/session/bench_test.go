package session

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkValidate measures the validate path per algorithm, with
// the verify cache warm (steady state: one token seen repeatedly) and
// cold (every token distinct — forces the signature check).
func BenchmarkValidate(b *testing.B) {
	for _, alg := range []Alg{AlgEd25519, AlgHMAC} {
		m, err := New(Options{Alg: alg, TTL: time.Hour})
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		tok, err := m.Mint("alice")
		if err != nil {
			b.Fatalf("Mint: %v", err)
		}
		b.Run(fmt.Sprintf("warm/%s", alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Validate(tok); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cold/%s", alg), func(b *testing.B) {
			toks := make([]string, b.N)
			for i := range toks {
				t, err := m.Mint(fmt.Sprintf("user-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				toks[i] = t
			}
			// Distinct users defeat the memoization without overflowing
			// it into pathological eviction behavior mid-run.
			for i := range m.cache {
				m.cache[i].mu.Lock()
				m.cache[i].m = make(map[string]cacheEntry)
				m.cache[i].mu.Unlock()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Validate(toks[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
		m.Close()
	}
}

// BenchmarkMint measures token issuance per algorithm.
func BenchmarkMint(b *testing.B) {
	for _, alg := range []Alg{AlgEd25519, AlgHMAC} {
		m, err := New(Options{Alg: alg, TTL: time.Hour})
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Mint("alice"); err != nil {
					b.Fatal(err)
				}
			}
		})
		m.Close()
	}
}

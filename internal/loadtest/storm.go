package loadtest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"clickpass/internal/authsvc"
)

// StormConfig describes a login-storm run: everyone reconnects at
// once, at a multiple of the server's capacity — the overload shape
// the admission policy exists for (a datacenter power-cycle, a
// mobile-network flap, a cache of sessions invalidated in one go).
// Unlike the steady-state swarm in Run, the storm's interesting
// outputs are how the refused half of the traffic was treated: shed
// latency (must be fast), deadline drops (must be few), and how close
// accepted-request latency stays to the uncontended baseline.
type StormConfig struct {
	// Dial opens the client-th transport handle.
	Dial func(client int) (authsvc.Client, error)
	// Clients is the storm size — typically 10x the server's
	// concurrency capacity.
	Clients int
	// OpsPerClient is how many requests each client fires, back to
	// back (reconnect-and-retry pressure, not paced traffic).
	OpsPerClient int
	// Request builds the op-th request for the client-th connection.
	Request func(client, op int) authsvc.Request
	// Timeout, when > 0, is each op's context deadline — the budget
	// the wire clients propagate to the server so queue-expired work
	// is dropped, not served late.
	Timeout time.Duration
}

// StormResult classifies every response of a storm run. Ops counts
// completed request/response exchanges (Accepted + Shed + Deadline +
// Throttled); transport failures are tallied separately in Errors.
type StormResult struct {
	// Clients is the storm size; Ops counts completed exchanges.
	Clients, Ops int
	// Accepted requests got a definitive service answer (ok, denied,
	// locked — the service did the work).
	Accepted int
	// Shed requests were refused with CodeOverloaded by the admission
	// policy.
	Shed int
	// Deadline requests were dropped with CodeUnavailable (budget
	// burned in queue or expired mid-pipeline).
	Deadline int
	// Throttled requests hit the per-user rate limit.
	Throttled int
	// Errors counts transport failures.
	Errors int
	// Elapsed is start gate to last client done.
	Elapsed time.Duration
	// Accepted-request latency percentiles.
	AccP50, AccP99, AccMax time.Duration
	// Shed-response latency percentiles — the proof refusals are
	// cheap: a shed must cost microseconds, not a queue slot.
	ShedP50, ShedP99, ShedMax time.Duration
}

// Goodput returns accepted (served) requests per second over the run.
func (r StormResult) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Accepted) / r.Elapsed.Seconds()
}

// ShedRate returns the fraction of completed ops that were shed.
func (r StormResult) ShedRate() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Ops)
}

// String formats the result as one benchmark-style line.
func (r StormResult) String() string {
	return fmt.Sprintf("clients=%d ops=%d accepted=%d shed=%d deadline=%d errs=%d goodput=%.0f/s acc_p99=%s shed_p99=%s",
		r.Clients, r.Ops, r.Accepted, r.Shed, r.Deadline, r.Errors, r.Goodput(), r.AccP99, r.ShedP99)
}

// Storm fires the login storm: every client dials first, then all
// release together and hammer their ops back to back. Responses are
// classified by outcome code; accepted and shed latencies are
// aggregated separately, because under overload they answer different
// questions (is served traffic still fast? are refusals actually
// cheap?).
func Storm(cfg StormConfig) (StormResult, error) {
	if cfg.Clients <= 0 || cfg.OpsPerClient <= 0 {
		return StormResult{}, fmt.Errorf("loadtest: clients %d and ops %d must be positive",
			cfg.Clients, cfg.OpsPerClient)
	}
	if cfg.Request == nil || cfg.Dial == nil {
		return StormResult{}, fmt.Errorf("loadtest: storm needs Request and Dial factories")
	}
	clients := make([]authsvc.Client, cfg.Clients)
	for i := range clients {
		c, err := cfg.Dial(i)
		if err != nil {
			for _, open := range clients[:i] {
				open.Close()
			}
			return StormResult{}, fmt.Errorf("loadtest: dialing client %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	type stats struct {
		acc, shed                      []time.Duration
		deadline, throttled, errs, ops int
	}
	all := make([]stats, cfg.Clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &all[i]
			<-start
			for op := 0; op < cfg.OpsPerClient; op++ {
				req := cfg.Request(i, op)
				ctx := context.Background()
				var cancel context.CancelFunc
				if cfg.Timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				}
				t0 := time.Now()
				resp, err := clients[i].Do(ctx, req)
				lat := time.Since(t0)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					st.errs++
					return // transport is dead; this client gives up
				}
				st.ops++
				switch {
				case resp.Code == authsvc.CodeOverloaded:
					st.shed = append(st.shed, lat)
				case resp.Code == authsvc.CodeUnavailable:
					st.deadline++
				case resp.Code == authsvc.CodeThrottled:
					st.throttled++
				default:
					st.acc = append(st.acc, lat)
				}
			}
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	res := StormResult{Clients: cfg.Clients, Elapsed: elapsed}
	var acc, shed []time.Duration
	for i := range all {
		res.Ops += all[i].ops
		res.Deadline += all[i].deadline
		res.Throttled += all[i].throttled
		res.Errors += all[i].errs
		acc = append(acc, all[i].acc...)
		shed = append(shed, all[i].shed...)
	}
	res.Accepted, res.Shed = len(acc), len(shed)
	if len(acc) > 0 {
		sort.Slice(acc, func(a, b int) bool { return acc[a] < acc[b] })
		res.AccP50, res.AccP99, res.AccMax = percentile(acc, 0.50), percentile(acc, 0.99), acc[len(acc)-1]
	}
	if len(shed) > 0 {
		sort.Slice(shed, func(a, b int) bool { return shed[a] < shed[b] })
		res.ShedP50, res.ShedP99, res.ShedMax = percentile(shed, 0.50), percentile(shed, 0.99), shed[len(shed)-1]
	}
	return res, nil
}

package authsvc

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkUserRate measures the per-user rate limiter on the hot
// admit path: many goroutines, each request for one of `users`
// distinct names, budget high enough that nothing is throttled (the
// bench measures bookkeeping, not shedding). Before PR 5 every bucket
// lived in one mutex-guarded map, so this bench serialized on that
// lock; the fnv-sharded bucket map removes the single point of
// contention (numbers in PERFORMANCE.md "Durable vault").
func BenchmarkUserRate(b *testing.B) {
	noop := HandlerFunc(func(ctx context.Context, req Request) Response {
		return Response{Version: Version, Code: CodeOK}
	})
	for _, users := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			h := WithUserRate(1e6, 1<<30)(noop)
			names := make([]string, users)
			for i := range names {
				names[i] = fmt.Sprintf("u-%d", i)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					req := Request{Op: OpLogin, User: names[i%users]}
					if resp := h.Handle(ctx, req); resp.Code != CodeOK {
						b.Error("unexpected throttle")
						return
					}
					i++
				}
			})
		})
	}
}

package authproto

import (
	"encoding/json"
	"net/http"
)

// HTTPHandler exposes the server over HTTP:
//
//	POST /v1/enroll  {"user": ..., "clicks": [{"x":..,"y":..}, ...]}
//	POST /v1/login   same body
//	GET  /v1/ping
//
// Responses are the same Response JSON as the TCP protocol. Login
// failures return 401, lockouts 429, malformed requests 400.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Response{OK: true})
	})
	mux.HandleFunc("/v1/enroll", s.httpOp(OpEnroll))
	mux.HandleFunc("/v1/login", s.httpOp(OpLogin))
	return mux
}

func (s *Server) httpOp(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, Response{Error: "POST required"})
			return
		}
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxFrame))
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: "malformed request body"})
			return
		}
		req.Op = op
		resp := s.Handle(req)
		status := http.StatusOK
		switch {
		case resp.Locked:
			status = http.StatusTooManyRequests
		case !resp.OK && op == OpLogin:
			status = http.StatusUnauthorized
		case !resp.OK:
			status = http.StatusBadRequest
		}
		writeJSON(w, status, resp)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

package vault

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen: arbitrary vault-file bytes must never panic the loaders,
// and the two Store backends must agree byte-for-byte on what is a
// valid password file. Seeds cover the failure classes the format
// rejects by contract: duplicate users, records without a user, and
// truncated JSON.
func FuzzOpen(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"user":"a","kind":"centered","square_side_px":13}]`))
	// Duplicate users.
	f.Add([]byte(`[{"user":"a"},{"user":"a"}]`))
	// Empty user.
	f.Add([]byte(`[{"user":""}]`))
	f.Add([]byte(`[{"kind":"centered"}]`))
	// Truncated file (mid-record and mid-array).
	f.Add([]byte(`[{"user":"a","kind":"cente`))
	f.Add([]byte(`[{"user":"a"},`))
	// Null record, wrong top-level type, junk.
	f.Add([]byte(`[null]`))
	f.Add([]byte(`{"user":"a"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "vault.json")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		v, vErr := Open(path)
		s, sErr := OpenSharded(path, 4)
		if (vErr == nil) != (sErr == nil) {
			t.Fatalf("backends disagree: Open err=%v, OpenSharded err=%v", vErr, sErr)
		}
		if vErr != nil {
			return
		}
		// Accepted input: both stores must hold the same records, and the
		// parsed state must survive a save/reload cycle.
		if v.Len() != s.Len() {
			t.Fatalf("backends loaded different counts: %d vs %d", v.Len(), s.Len())
		}
		vUsers, sUsers := v.Users(), s.Users()
		for i := range vUsers {
			if vUsers[i] != sUsers[i] {
				t.Fatalf("backends loaded different users: %v vs %v", vUsers, sUsers)
			}
			vr, _ := v.Get(vUsers[i])
			sr, _ := s.Get(vUsers[i])
			vb, _ := json.Marshal(vr)
			sb, _ := json.Marshal(sr)
			if string(vb) != string(sb) {
				t.Fatalf("user %q differs across backends", vUsers[i])
			}
		}
		out := filepath.Join(dir, "resaved.json")
		if err := v.SaveTo(out); err != nil {
			t.Fatalf("SaveTo after accepting input: %v", err)
		}
		if _, err := Open(out); err != nil {
			t.Fatalf("accepted input did not round-trip: %v", err)
		}
	})
}

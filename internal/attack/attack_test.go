package attack

import (
	"math"
	"sync"
	"testing"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/hotspot"
	"clickpass/internal/imagegen"
	"clickpass/internal/study"
)

type studyPair struct {
	field, lab *dataset.Dataset
	img        *imagegen.Image
}

var (
	pairsOnce sync.Once
	pairs     []studyPair
)

func studyPairs(t *testing.T) []studyPair {
	t.Helper()
	pairsOnce.Do(func() {
		for i, img := range imagegen.Gallery() {
			field, err := study.Run(study.FieldConfig(img, uint64(100+i)))
			if err != nil {
				t.Fatal(err)
			}
			lab, err := study.Run(study.LabConfig(img, uint64(200+i)))
			if err != nil {
				t.Fatal(err)
			}
			pairs = append(pairs, studyPair{field: field, lab: lab, img: img})
		}
	})
	return pairs
}

func TestDictionaryBits(t *testing.T) {
	lab := studyPairs(t)[0].lab
	dict, err := BuildDictionary(lab, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dict.Points) != 150 {
		t.Errorf("points = %d, want 150 (30 passwords x 5)", len(dict.Points))
	}
	if dict.SourcePasswords != 30 {
		t.Errorf("source passwords = %d, want 30", dict.SourcePasswords)
	}
	// P(150,5) = 150*149*148*147*146 ~ 2^36.04 — the paper's "36-bit
	// dictionary".
	if math.Abs(dict.Bits()-36) > 0.2 {
		t.Errorf("dictionary bits = %.2f, want ~36", dict.Bits())
	}
}

func TestBuildDictionaryValidation(t *testing.T) {
	lab := studyPairs(t)[0].lab
	if _, err := BuildDictionary(lab, 0); err == nil {
		t.Error("zero clicks accepted")
	}
	tiny := &dataset.Dataset{
		Image: "t", Width: 10, Height: 10,
		Passwords: []dataset.Password{
			{ID: 1, User: "u", Image: "t", Clicks: []dataset.Click{{X: 1, Y: 1}}},
		},
	}
	if _, err := BuildDictionary(tiny, 5); err == nil {
		t.Error("under-sized pool accepted")
	}
	bad := &dataset.Dataset{Image: "t"}
	if _, err := BuildDictionary(bad, 5); err == nil {
		t.Error("invalid dataset accepted")
	}
}

// TestCrackableExact exercises the matching on hand-built cases.
func TestCrackableExact(t *testing.T) {
	scheme, err := core.NewCentered(13) // accepts within 6px
	if err != nil {
		t.Fatal(err)
	}
	clicks := []geom.Point{geom.Pt(50, 50), geom.Pt(100, 100)}
	pool := []geom.Point{geom.Pt(52, 48), geom.Pt(104, 97)}
	if !crackable(clicks, pool, scheme) {
		t.Error("pool covering both clicks should crack")
	}
	// Both clicks coverable only by the SAME pool point: permutations
	// cannot reuse a point, so not crackable.
	closeClicks := []geom.Point{geom.Pt(50, 50), geom.Pt(53, 53)}
	onePoint := []geom.Point{geom.Pt(51, 51)}
	if crackable(closeClicks, onePoint, scheme) {
		t.Error("single shared point must not crack two clicks")
	}
	// Add a second point covering only the first click: matching now
	// exists (point A -> click 1, shared point -> click 2).
	twoPoints := []geom.Point{geom.Pt(51, 51), geom.Pt(45, 45)}
	if !crackable(closeClicks, twoPoints, scheme) {
		t.Error("two points should crack via matching")
	}
	// A click with no nearby pool point cannot be cracked.
	farClick := []geom.Point{geom.Pt(50, 50), geom.Pt(300, 300)}
	if crackable(farClick, pool, scheme) {
		t.Error("uncovered click must not crack")
	}
}

func TestOfflineKnownGridsRuns(t *testing.T) {
	for _, pair := range studyPairs(t) {
		dict, err := BuildDictionary(pair.lab, 5)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.NewCentered(13)
		if err != nil {
			t.Fatal(err)
		}
		res, err := OfflineKnownGrids(pair.field, dict, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passwords != len(pair.field.Passwords) {
			t.Errorf("%s: evaluated %d passwords, want %d",
				pair.field.Image, res.Passwords, len(pair.field.Passwords))
		}
		if res.Cracked < 0 || res.Cracked > res.Passwords {
			t.Errorf("%s: cracked %d out of range", pair.field.Image, res.Cracked)
		}
		if res.CrackedPct() == 0 {
			t.Errorf("%s: human-seeded dictionary cracked nothing — hotspot model broken", pair.field.Image)
		}
	}
}

// TestFigure7Parity: with equal square sizes the two schemes must have
// similar crack rates (paper: "they performed similarly under this
// condition").
func TestFigure7Parity(t *testing.T) {
	pair := studyPairs(t)[0]
	centered, robust, err := Figure7(pair.field, pair.lab, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(centered) != len(Figure7Sizes) || len(robust) != len(Figure7Sizes) {
		t.Fatal("series length mismatch")
	}
	// "Close" allows ~2.5 standard errors: each rate is a proportion
	// over 162 passwords (SE up to ~4pp), so the difference has SE
	// ~5.5pp. The structural Figure 8 gaps are 30+pp.
	for i := range centered {
		diff := math.Abs(centered[i].Cracked - robust[i].Cracked)
		if diff > 14 {
			t.Errorf("size %d: |centered %.1f%% - robust %.1f%%| = %.1f — equal sizes should be close",
				centered[i].X, centered[i].Cracked, robust[i].Cracked, diff)
		}
	}
	// Crack rate must grow with square size.
	if !(centered[len(centered)-1].Cracked > centered[0].Cracked) {
		t.Error("centered crack rate not increasing with size")
	}
	if !(robust[len(robust)-1].Cracked > robust[0].Cracked) {
		t.Error("robust crack rate not increasing with size")
	}
}

// TestFigure8Gap: with equal r, Robust must be cracked far more often
// (paper, Cars: r=6 gives 14.8% vs 45.1%; r=9 up to 79% vs 26%).
func TestFigure8Gap(t *testing.T) {
	for _, pair := range studyPairs(t) {
		centered, robust, err := Figure8(pair.field, pair.lab, core.MostCentered, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range centered {
			if robust[i].Cracked <= centered[i].Cracked {
				t.Errorf("%s r=%d: robust %.1f%% <= centered %.1f%% — equal-r gap missing",
					pair.field.Image, centered[i].X, robust[i].Cracked, centered[i].Cracked)
			}
		}
		// The r=9 robust rate should be dramatic (paper: up to 79%).
		last := robust[len(robust)-1]
		if last.Cracked < 40 {
			t.Errorf("%s: robust r=9 cracked only %.1f%%", pair.field.Image, last.Cracked)
		}
	}
}

// TestFigure8CarsMagnitudes pins the Cars proxy near the paper's
// published values with generous tolerance (simulated substrate).
func TestFigure8CarsMagnitudes(t *testing.T) {
	pair := studyPairs(t)[0]
	if pair.field.Image != "cars" {
		t.Fatal("expected cars first")
	}
	centered, robust, err := Figure8(pair.field, pair.lab, core.MostCentered, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// paper: centered r6=14.8, r9=26; robust r6=45.1, r9 up to 79.
	checks := []struct {
		name     string
		got      float64
		lo, hi   float64
		paperPct float64
	}{
		{"centered r6", centered[1].Cracked, 5, 30, 14.8},
		{"centered r9", centered[2].Cracked, 12, 45, 26},
		{"robust r6", robust[1].Cracked, 30, 75, 45.1},
		{"robust r9", robust[2].Cracked, 55, 95, 79},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s = %.1f%%, want within [%v,%v] (paper %.1f%%)",
				c.name, c.got, c.lo, c.hi, c.paperPct)
		}
	}
}

func TestUnknownGridBits(t *testing.T) {
	c, _ := core.NewCentered(16)
	rb, _ := core.NewRobust2D(36, core.MostCentered, 1)
	// Centered 16x16: 8 bits per click x 5 = 40 bits extra.
	if got := UnknownGridBits(c, 5); math.Abs(got-40) > 1e-9 {
		t.Errorf("centered unknown-grid bits = %.2f, want 40", got)
	}
	// Robust: log2(3) per click x 5 ~ 7.9 bits.
	if got := UnknownGridBits(rb, 5); math.Abs(got-5*math.Log2(3)) > 1e-9 {
		t.Errorf("robust unknown-grid bits = %.2f", got)
	}
	// The paper's point: Centered makes grid-blind offline attacks far
	// more expensive.
	if UnknownGridBits(c, 5) <= UnknownGridBits(rb, 5) {
		t.Error("centered should cost more than robust without grid ids")
	}
}

// TestOnlineAttackInfeasible: a finding the paper implies — with five
// ordered clicks, a handful of online guesses through the login UI
// compromises essentially nobody, in stark contrast to the offline
// rates. Lockout monotonicity must still hold.
func TestOnlineAttackInfeasible(t *testing.T) {
	pair := studyPairs(t)[1] // pool: most concentrated, best case for attacker
	rb, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Online(pair.field, pair.lab, pair.img, rb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Online(pair.field, pair.lab, pair.img, rb, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Compromised > loose.Compromised {
		t.Error("tighter lockout compromised more accounts")
	}
	if loose.CompromisedPct() > 5 {
		t.Errorf("online attack compromised %.1f%% — implausibly high for whole-password guessing",
			loose.CompromisedPct())
	}
	if strict.Accounts != len(pair.field.Passwords) {
		t.Errorf("attacked %d accounts, want %d", strict.Accounts, len(pair.field.Passwords))
	}
	if _, err := Online(pair.field, pair.lab, pair.img, rb, 0, 0); err == nil {
		t.Error("zero lockout accepted")
	}
}

// TestOnlineAttackHitsReusedPassword: if a lab guess nearly coincides
// with a field password (password reuse / an insider's knowledge), the
// online attack succeeds within the lockout budget — and succeeds
// against Robust at displacements Centered would reject.
func TestOnlineAttackHitsReusedPassword(t *testing.T) {
	img := imagegen.Pool()
	clicks := []dataset.Click{
		{X: 60, Y: 50}, {X: 170, Y: 45}, {X: 300, Y: 70}, {X: 110, Y: 160}, {X: 250, Y: 280},
	}
	// The guess is each click displaced by 8px: outside Centered r=6.5
	// tolerance, often inside a Robust 36x36 square.
	guess := make([]dataset.Click, len(clicks))
	for i, c := range clicks {
		guess[i] = dataset.Click{X: c.X + 8, Y: c.Y}
	}
	field := &dataset.Dataset{
		Image: img.Name, Width: img.Size.W, Height: img.Size.H,
		Passwords: []dataset.Password{{ID: 1, User: "victim", Image: img.Name, Clicks: clicks}},
	}
	lab := &dataset.Dataset{
		Image: img.Name, Width: img.Size.W, Height: img.Size.H,
		Passwords: []dataset.Password{{ID: 2, User: "leak", Image: img.Name, Clicks: guess}},
	}
	c13, err := core.NewCentered(13)
	if err != nil {
		t.Fatal(err)
	}
	cRes, err := Online(field, lab, img, c13, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cRes.Compromised != 0 {
		t.Error("centered accepted an 8px-off guess — tolerance not exact")
	}
	exact := &dataset.Dataset{
		Image: img.Name, Width: img.Size.W, Height: img.Size.H,
		Passwords: []dataset.Password{{ID: 3, User: "leak2", Image: img.Name, Clicks: clicks}},
	}
	cRes2, err := Online(field, exact, img, c13, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cRes2.Compromised != 1 {
		t.Error("exact guess must compromise the account")
	}
}

func TestResultPctEmpty(t *testing.T) {
	if (Result{}).CrackedPct() != 0 {
		t.Error("empty result pct should be 0")
	}
	if (OnlineResult{}).CompromisedPct() != 0 {
		t.Error("empty online pct should be 0")
	}
}

// TestWitnessAgreesWithCrackable: Witness succeeds exactly when the
// matching test says crackable, and every witness point lands in its
// click's accepting region with no point reused.
func TestWitnessAgreesWithCrackable(t *testing.T) {
	pair := studyPairs(t)[0]
	dict, err := BuildDictionary(pair.lab, 5)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	checked, witnessed := 0, 0
	for i := range pair.field.Passwords {
		pw := &pair.field.Passwords[i]
		clicks := pw.Points()
		want := crackable(clicks, dict.Points, scheme)
		entry, ok := Witness(clicks, dict.Points, scheme)
		if ok != want {
			t.Fatalf("password %d: witness ok=%v, crackable=%v", pw.ID, ok, want)
		}
		checked++
		if !ok {
			continue
		}
		witnessed++
		if len(entry) != len(clicks) {
			t.Fatalf("password %d: witness length %d", pw.ID, len(entry))
		}
		used := make(map[geom.Point]int)
		for j, p := range entry {
			rg := scheme.Region(scheme.Enroll(clicks[j]))
			if !rg.Contains(p) {
				t.Fatalf("password %d: witness point %d outside region", pw.ID, j)
			}
			used[p]++
		}
		// Dictionary permutations cannot repeat a point; equal points
		// can only appear as often as they appear in the pool.
		for p, n := range used {
			avail := 0
			for _, q := range dict.Points {
				if q == p {
					avail++
				}
			}
			if n > avail {
				t.Fatalf("password %d: witness reuses point %v", pw.ID, p)
			}
		}
	}
	if witnessed == 0 {
		t.Error("no witnesses produced — attack found nothing to validate")
	}
	t.Logf("validated %d witnesses over %d passwords", witnessed, checked)
}

// TestAutomatedDictionary: the image-processing attack (saliency top-K
// candidates) must crack a substantial fraction of what the
// human-seeded dictionary cracks, and far more than a grid of
// arbitrary points — the §2.1 premise that hotspots, not individual
// users, drive dictionary attacks.
func TestAutomatedDictionary(t *testing.T) {
	pair := studyPairs(t)[1] // pool
	scheme, err := core.NewRobust2D(36, core.MostCentered, 1)
	if err != nil {
		t.Fatal(err)
	}
	human, err := BuildDictionary(pair.lab, 5)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := hotspot.FromSaliency(pair.img, 4)
	if err != nil {
		t.Fatal(err)
	}
	autoDict, err := NewPointDictionary(dm.TopK(150, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	// A uniform lattice of the same budget, as the weak baseline.
	var lattice []geom.Point
	for x := 20; x < 451 && len(lattice) < 150; x += 38 {
		for y := 20; y < 331 && len(lattice) < 150; y += 38 {
			lattice = append(lattice, geom.Pt(x, y))
		}
	}
	latticeDict, err := NewPointDictionary(lattice, 5)
	if err != nil {
		t.Fatal(err)
	}
	hRes, err := OfflineKnownGrids(pair.field, human, scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	aRes, err := OfflineKnownGrids(pair.field, autoDict, scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	lRes, err := OfflineKnownGrids(pair.field, latticeDict, scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("human %.1f%%, automated %.1f%%, lattice %.1f%%",
		hRes.CrackedPct(), aRes.CrackedPct(), lRes.CrackedPct())
	if aRes.CrackedPct() < hRes.CrackedPct()/3 {
		t.Errorf("automated attack (%.1f%%) far below human-seeded (%.1f%%)",
			aRes.CrackedPct(), hRes.CrackedPct())
	}
	if aRes.CrackedPct() <= lRes.CrackedPct() {
		t.Errorf("automated attack (%.1f%%) no better than blind lattice (%.1f%%)",
			aRes.CrackedPct(), lRes.CrackedPct())
	}
}

func TestNewPointDictionaryValidation(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}
	if _, err := NewPointDictionary(pts, 0); err == nil {
		t.Error("zero clicks accepted")
	}
	if _, err := NewPointDictionary(pts, 5); err == nil {
		t.Error("undersized pool accepted")
	}
	d, err := NewPointDictionary(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Entries() != 2 { // P(2,2)
		t.Errorf("entries = %v", d.Entries())
	}
}

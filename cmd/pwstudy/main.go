// Command pwstudy regenerates every table and figure of the paper's
// evaluation on a freshly simulated study (deterministic in -seed):
//
//	pwstudy -all            # everything (default)
//	pwstudy -table 1        # false accept/reject, equal square sizes
//	pwstudy -table 2        # false accepts, equal r
//	pwstudy -table 3        # theoretical password space
//	pwstudy -figure 1       # worst-case Robust geometry (ASCII)
//	pwstudy -figure 2       # 1-D centered discretization worked example
//	pwstudy -figure 3|4     # the Cars/Pool image proxies (saliency heatmaps)
//	pwstudy -figure 5|6     # equal-size vs equal-r framing
//	pwstudy -figure 7       # offline dictionary attack, equal sizes
//	pwstudy -figure 8       # offline dictionary attack, equal r
//	pwstudy -success        # login success rates per scheme (usability)
//	pwstudy -online         # lockout-limited online attack (§5.1)
//	pwstudy -workfactor     # unknown-grid-identifier work factor (§5.1-5.2)
//	pwstudy -beyond         # extensions: automated dictionaries, PCCP viewport
//	pwstudy -cohort         # robustness: tables 1-2 under participant heterogeneity
//	pwstudy -sensitivity    # crack rate vs image hotspot concentration
//	pwstudy -csv DIR        # additionally write CSV files to DIR
//	pwstudy -dump DIR       # write the simulated datasets as JSON
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"clickpass/internal/analysis"
	"clickpass/internal/attack"
	"clickpass/internal/ccp"
	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/fixed"
	"clickpass/internal/geom"
	"clickpass/internal/hotspot"
	"clickpass/internal/imagegen"
	"clickpass/internal/report"
	"clickpass/internal/rng"
	"clickpass/internal/space"
	"clickpass/internal/study"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate one table (1, 2 or 3)")
		figure      = flag.Int("figure", 0, "regenerate one figure (1, 5, 6, 7 or 8)")
		success     = flag.Bool("success", false, "report login success rates per scheme")
		online      = flag.Bool("online", false, "run the online attack experiment")
		workfactor  = flag.Bool("workfactor", false, "report unknown-grid work factors")
		sensitivity = flag.Bool("sensitivity", false, "sweep image hotspot concentration vs crack rate")
		cohortFlag  = flag.Bool("cohort", false, "re-run tables 1-2 on the participant-level cohort generator")
		beyond      = flag.Bool("beyond", false, "run the extension experiments (automated dictionaries, PCCP)")
		all         = flag.Bool("all", false, "run everything")
		seed        = flag.Uint64("seed", 42, "simulation seed")
		workers     = flag.Int("workers", 0, "worker goroutines for generation/analysis/attacks (0 = one per CPU, 1 = serial; results are identical)")
		csvDir      = flag.String("csv", "", "write CSV outputs to this directory")
		mdDir       = flag.String("md", "", "write Markdown tables to this directory")
		dumpDir     = flag.String("dump", "", "write simulated datasets (JSON) to this directory")
		policyName  = flag.String("policy", "most-centered", "robust grid policy: most-centered, first-safe, random-safe")
	)
	flag.Parse()
	if *table == 0 && *figure == 0 && !*success && !*online && !*workfactor && !*beyond && !*cohortFlag && !*sensitivity && *dumpDir == "" {
		*all = true
	}
	mdDirGlobal = *mdDir
	policy, err := parsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	env, err := newEnv(*seed, policy, *workers)
	if err != nil {
		fatal(err)
	}
	if *dumpDir != "" {
		if err := env.dump(*dumpDir); err != nil {
			fatal(err)
		}
	}
	var runErr error
	run := func(name string, f func() error) {
		if runErr != nil {
			return
		}
		if err := f(); err != nil {
			runErr = fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	if *all || *table == 1 {
		run("table 1", func() error { return env.table1(*csvDir) })
	}
	if *all || *table == 2 {
		run("table 2", func() error { return env.table2(*csvDir) })
	}
	if *all || *table == 3 {
		run("table 3", func() error { return env.table3(*csvDir) })
	}
	if *all || *figure == 1 {
		run("figure 1", env.figure1)
	}
	if *all || *figure == 2 {
		run("figure 2", env.figure2)
	}
	if *all || *figure == 3 {
		run("figure 3", func() error { return env.figure34(3) })
	}
	if *all || *figure == 4 {
		run("figure 4", func() error { return env.figure34(4) })
	}
	if *all || *figure == 5 || *figure == 6 {
		run("figures 5-6", env.figures56)
	}
	if *all || *figure == 7 {
		run("figure 7", func() error { return env.figure78(7, *csvDir) })
	}
	if *all || *figure == 8 {
		run("figure 8", func() error { return env.figure78(8, *csvDir) })
	}
	if *all || *success {
		run("success", env.success)
	}
	if *all || *online {
		run("online", env.online)
	}
	if *all || *workfactor {
		run("workfactor", env.workfactor)
	}
	if *all || *beyond {
		run("beyond", env.beyond)
	}
	if *all || *cohortFlag {
		run("cohort", env.cohort)
	}
	if *all || *sensitivity {
		run("sensitivity", env.sensitivity)
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// mdDirGlobal holds the -md directory; empty disables Markdown output.
var mdDirGlobal string

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwstudy:", err)
	os.Exit(1)
}

func parsePolicy(name string) (core.RobustPolicy, error) {
	switch name {
	case "most-centered":
		return core.MostCentered, nil
	case "first-safe":
		return core.FirstSafe, nil
	case "random-safe":
		return core.RandomSafe, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

// env holds the simulated studies shared by all experiments.
type env struct {
	seed    uint64
	policy  core.RobustPolicy
	workers int
	images  []*imagegen.Image
	field   map[string]*dataset.Dataset
	lab     map[string]*dataset.Dataset
}

func newEnv(seed uint64, policy core.RobustPolicy, workers int) (*env, error) {
	e := &env{
		seed:    seed,
		policy:  policy,
		workers: workers,
		images:  imagegen.Gallery(),
		field:   make(map[string]*dataset.Dataset),
		lab:     make(map[string]*dataset.Dataset),
	}
	for i, img := range e.images {
		fieldCfg := study.FieldConfig(img, seed+uint64(i))
		fieldCfg.Workers = workers
		f, err := study.Run(fieldCfg)
		if err != nil {
			return nil, err
		}
		labCfg := study.LabConfig(img, seed+100+uint64(i))
		labCfg.Workers = workers
		l, err := study.Run(labCfg)
		if err != nil {
			return nil, err
		}
		e.field[img.Name] = f
		e.lab[img.Name] = l
	}
	totalPw, totalLogins := 0, 0
	for _, d := range e.field {
		totalPw += len(d.Passwords)
		totalLogins += len(d.Logins)
	}
	fmt.Printf("simulated field study: %d passwords, %d logins over %d images (seed %d)\n\n",
		totalPw, totalLogins, len(e.images), seed)
	return e, nil
}

func (e *env) fieldAll() []*dataset.Dataset {
	var out []*dataset.Dataset
	for _, img := range e.images {
		out = append(out, e.field[img.Name])
	}
	return out
}

func (e *env) dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, d *dataset.Dataset) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return d.WriteJSON(f)
	}
	for _, img := range e.images {
		if err := write("field-"+img.Name+".json", e.field[img.Name]); err != nil {
			return err
		}
		if err := write("lab-"+img.Name+".json", e.lab[img.Name]); err != nil {
			return err
		}
	}
	fmt.Printf("datasets written to %s\n", dir)
	return nil
}

func maybeCSV(dir, name string, write func(f io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func (e *env) table1(csvDir string) error {
	rows, err := analysis.Table1(e.fieldAll(), e.policy, e.seed, e.workers)
	if err != nil {
		return err
	}
	paperFA := map[int]string{9: "3.5", 13: "1.7", 19: "0.5"}
	paperFR := map[int]string{9: "21.8", 13: "21.1", 19: "10.0"}
	tb := report.NewTable(
		"Table 1: Robust Discretization false accept/reject rates, equal grid-square sizes",
		"Grid", "Robust r (px)", "False Accept", "paper", "False Reject", "95% CI", "paper")
	for _, r := range rows {
		frLo, frHi := r.FalseRejectCI()
		tb.AddRowf(
			fmt.Sprintf("%dx%d", r.RobustSide, r.RobustSide),
			fmt.Sprintf("%.2f", r.RobustRPx),
			fmt.Sprintf("%.1f%%", r.FalseAcceptPct()), paperFA[r.RobustSide]+"%",
			fmt.Sprintf("%.1f%%", r.FalseRejectPct()),
			fmt.Sprintf("[%.1f, %.1f]", frLo, frHi),
			paperFR[r.RobustSide]+"%",
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if err := maybeCSV(mdDirGlobal, "table1.md", tb.WriteMarkdown); err != nil {
		return err
	}
	return maybeCSV(csvDir, "table1.csv", tb.WriteCSV)
}

func (e *env) table2(csvDir string) error {
	rows, err := analysis.Table2(e.fieldAll(), e.policy, e.seed, e.workers)
	if err != nil {
		return err
	}
	paperFA := map[int]string{4: "32.1", 6: "14.1", 9: "4.3"}
	tb := report.NewTable(
		"Table 2: Robust Discretization false accepts, equal guaranteed r (false rejects are 0 by construction)",
		"r (px)", "Robust grid", "False Accept", "95% CI", "paper", "False Reject")
	for _, r := range rows {
		faLo, faHi := r.FalseAcceptCI()
		tb.AddRowf(
			fmt.Sprintf("%.0f", r.RobustRPx),
			fmt.Sprintf("%dx%d", r.RobustSide, r.RobustSide),
			fmt.Sprintf("%.1f%%", r.FalseAcceptPct()),
			fmt.Sprintf("[%.1f, %.1f]", faLo, faHi),
			paperFA[int(r.RobustRPx)]+"%",
			fmt.Sprintf("%.1f%%", r.FalseRejectPct()),
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if err := maybeCSV(mdDirGlobal, "table2.md", tb.WriteMarkdown); err != nil {
		return err
	}
	return maybeCSV(csvDir, "table2.csv", tb.WriteCSV)
}

func (e *env) table3(csvDir string) error {
	rows, err := space.Table3(5)
	if err != nil {
		return err
	}
	tb := report.NewTable(
		"Table 3: theoretical full password space, 5-click passwords (exact reproduction)",
		"Image", "Grid", "Centered r", "Robust r", "Squares/grid", "Space (bits)")
	for _, r := range rows {
		tb.AddRowf(
			r.Image.String(),
			fmt.Sprintf("%dx%d", r.SidePx, r.SidePx),
			trimFloat(r.CenteredRPx),
			trimFloat(r.RobustRPx),
			fmt.Sprintf("%d", r.SquaresPerGrid),
			fmt.Sprintf("%.1f", r.Bits),
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	text, err := space.TextPasswordBits(95, 8)
	if err != nil {
		return err
	}
	fmt.Printf("baseline: random 8-char text password over 95 symbols = %.1f bits\n", text)
	if err := maybeCSV(mdDirGlobal, "table3.md", tb.WriteMarkdown); err != nil {
		return err
	}
	return maybeCSV(csvDir, "table3.csv", tb.WriteCSV)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func (e *env) figure1() error {
	wc, err := analysis.FindWorstCase(36, e.policy, e.seed, e.workers)
	if err != nil {
		return err
	}
	fmt.Println("Figure 1: worst-case Robust Discretization square vs centered tolerance (36x36, r=6)")
	fmt.Printf("  original click %v; Robust square x:[%s,%s) y:[%s,%s)\n",
		wc.Origin, wc.Region.MinX, wc.Region.MaxX, wc.Region.MinY, wc.Region.MaxY)
	fmt.Printf("  accepted displacement: %.1fpx one way, %.1fpx the other (guaranteed r=%.0f, rmax=%.0f)\n",
		wc.LeftSlackPx, wc.RightSlackPx, wc.GuaranteedRPx, wc.RMaxPx)
	fmt.Println()
	// ASCII rendering: a row through the click-point. The centered-
	// tolerance square of Figure 1 has the same size as the Robust
	// square (half-width side/2 = 18), centered on the click.
	fmt.Println("  x-axis through the click-point (. rejected, # Robust accepts, = both accept, C click):")
	var b strings.Builder
	b.WriteString("  ")
	origX := wc.Origin.X.Pixels()
	for dx := -40; dx <= 40; dx++ {
		px := origX + dx
		inRobust := float64(px) >= wc.Region.MinX.Float() && float64(px) < wc.Region.MaxX.Float()
		inCentered := dx >= -18 && dx <= 18
		switch {
		case dx == 0:
			b.WriteByte('C')
		case inRobust && inCentered:
			b.WriteByte('=')
		case inRobust:
			b.WriteByte('#')
		case inCentered:
			b.WriteByte('!') // centered would accept, Robust rejects: false reject zone
		default:
			b.WriteByte('.')
		}
	}
	fmt.Println(b.String())
	fmt.Println("  ! marks the false-reject zone; # beyond the = zone is the false-accept zone.")
	return nil
}

func (e *env) figures56() error {
	fmt.Println("Figures 5-6: the two ways to compare the schemes")
	tb := report.NewTable(
		"Figure 5 (equal grid-square size): guaranteed r differs",
		"Grid", "Centered r (px)", "Robust r (px)")
	for _, s := range []int{9, 13, 19} {
		tb.AddRowf(fmt.Sprintf("%dx%d", s, s), trimFloat(float64(s-1)/2), trimFloat(float64(s)/6))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	tb = report.NewTable(
		"Figure 6 (equal guaranteed r): grid-square sizes differ, password space shrinks for Robust",
		"r (px)", "Centered grid", "Robust grid", "Centered bits (451x331)", "Robust bits (451x331)")
	for _, r := range []int{4, 6, 9} {
		cb, rb, err := space.SpaceLossVsCentered(imagegen.StudySize, r, 5)
		if err != nil {
			return err
		}
		tb.AddRowf(fmt.Sprintf("%d", r),
			fmt.Sprintf("%dx%d", 2*r+1, 2*r+1),
			fmt.Sprintf("%dx%d", 6*r, 6*r),
			fmt.Sprintf("%.1f", cb), fmt.Sprintf("%.1f", rb))
	}
	return tb.Render(os.Stdout)
}

func (e *env) figure78(which int, csvDir string) error {
	title := "Figure 7: offline dictionary attack with known grid identifiers, equal grid-square sizes"
	if which == 8 {
		title = "Figure 8: offline dictionary attack with known grid identifiers, equal r"
	}
	fmt.Println(title)
	for _, img := range e.images {
		var cSeries, rSeries []attack.SeriesPoint
		var err error
		if which == 7 {
			cSeries, rSeries, err = attack.Figure7(e.field[img.Name], e.lab[img.Name], e.policy, e.seed, e.workers)
		} else {
			cSeries, rSeries, err = attack.Figure8(e.field[img.Name], e.lab[img.Name], e.policy, e.seed, e.workers)
		}
		if err != nil {
			return err
		}
		labels := make([]string, len(cSeries))
		cVals := make([]float64, len(cSeries))
		rVals := make([]float64, len(cSeries))
		for i := range cSeries {
			if which == 7 {
				labels[i] = fmt.Sprintf("%dx%d", cSeries[i].X, cSeries[i].X)
			} else {
				labels[i] = fmt.Sprintf("r=%d", cSeries[i].X)
			}
			cVals[i] = cSeries[i].Cracked
			rVals[i] = rSeries[i].Cracked
		}
		series := []report.Series{
			{Name: "centered", Labels: labels, Values: cVals},
			{Name: "robust", Labels: labels, Values: rVals},
		}
		if err := report.BarChart(os.Stdout, fmt.Sprintf("-- %s (%d passwords, ~36-bit dictionary)",
			img.Name, len(e.field[img.Name].Passwords)), series, 50); err != nil {
			return err
		}
		name := fmt.Sprintf("figure%d-%s.csv", which, img.Name)
		if err := maybeCSV(csvDir, name, func(f io.Writer) error {
			return report.SeriesCSV(f, series)
		}); err != nil {
			return err
		}
	}
	if which == 8 {
		fmt.Println("paper (cars): centered r=6 14.8%, robust r=6 45.1%; robust r=9 up to 79% vs centered 26%")
	} else {
		fmt.Println("paper: equal sizes -> the schemes perform similarly")
	}
	return nil
}

func (e *env) online() error {
	fmt.Println("Online dictionary attack (§5.1): prioritized guesses through the login UI, per-account lockout")
	tb := report.NewTable("", "Image", "Scheme", "Grid", "Lockout", "Compromised")
	for _, img := range e.images {
		for _, lockout := range []int{3, 10, 30} {
			centered, err := core.NewCentered(13)
			if err != nil {
				return err
			}
			robust, err := core.NewRobust2D(36, e.policy, e.seed)
			if err != nil {
				return err
			}
			for _, scheme := range []core.Scheme{centered, robust} {
				res, err := attack.Online(e.field[img.Name], e.lab[img.Name], img, scheme, lockout, e.workers)
				if err != nil {
					return err
				}
				tb.AddRowf(img.Name, res.Scheme,
					fmt.Sprintf("%dx%d", res.SidePx, res.SidePx),
					fmt.Sprintf("%d", lockout),
					fmt.Sprintf("%d/%d (%.1f%%)", res.Compromised, res.Accounts, res.CompromisedPct()))
			}
		}
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("whole-password online guessing is infeasible at study scale; lockouts bound it further")
	return nil
}

func (e *env) workfactor() error {
	fmt.Println("Work factor without clear grid identifiers (§5.1) and information revealed (§5.2)")
	tb := report.NewTable("", "Scheme", "Grid", "Id bits/click", "Extra bits for 5 clicks", "Stored id size")
	for _, side := range []int{13, 16, 19} {
		c, err := core.NewCentered(side)
		if err != nil {
			return err
		}
		tb.AddRowf("centered", fmt.Sprintf("%dx%d", side, side),
			fmt.Sprintf("%.2f", c.ClearBits()),
			fmt.Sprintf("%.1f", attack.UnknownGridBits(c, 5)),
			fmt.Sprintf("%d offsets/axis", side))
	}
	rb, err := core.NewRobust2D(36, e.policy, e.seed)
	if err != nil {
		return err
	}
	tb.AddRowf("robust", "36x36",
		fmt.Sprintf("%.2f", rb.ClearBits()),
		fmt.Sprintf("%.1f", attack.UnknownGridBits(rb, 5)),
		"3 grids (2 bits)")
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("iterated hashing h^1000 adds ~10 bits per guess on top (paper §3.2)")
	return nil
}

// beyond runs the extension experiments: the Dirik-style automated
// hotspot dictionary (no harvested passwords needed) and the
// Persuasive Cued Click-Points viewport effect.
func (e *env) beyond() error {
	fmt.Println("Extensions: automated hotspot dictionaries and Persuasive CCP (paper §2-§2.1 context)")
	tb := report.NewTable(
		"Offline attack with known grid identifiers, robust 36x36: dictionary sources compared",
		"Image", "Human-seeded (150 pts)", "Automated saliency (150 pts)", "Blind lattice (150 pts)")
	for _, img := range e.images {
		scheme, err := core.NewRobust2D(36, e.policy, e.seed)
		if err != nil {
			return err
		}
		human, err := attack.BuildDictionary(e.lab[img.Name], 5)
		if err != nil {
			return err
		}
		dm, err := hotspot.FromSaliency(img, 4)
		if err != nil {
			return err
		}
		auto, err := attack.NewPointDictionary(dm.TopK(150, 8), 5)
		if err != nil {
			return err
		}
		var lattice []geom.Point
		for x := 20; x < img.Size.W && len(lattice) < 150; x += 38 {
			for y := 20; y < img.Size.H && len(lattice) < 150; y += 38 {
				lattice = append(lattice, geom.Pt(x, y))
			}
		}
		blind, err := attack.NewPointDictionary(lattice, 5)
		if err != nil {
			return err
		}
		row := []string{img.Name}
		for _, dict := range []*attack.Dictionary{human, auto, blind} {
			res, err := attack.OfflineKnownGrids(e.field[img.Name], dict, scheme, e.workers)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%d/%d (%.1f%%)", res.Cracked, res.Passwords, res.CrackedPct()))
		}
		tb.AddRowf(row...)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("automated image analysis rivals harvested passwords: hotspots drive the attack (§2.1)")
	fmt.Println()

	tb = report.NewTable(
		"Persuasive CCP viewport during creation: automated top-30 dictionary coverage of created clicks",
		"Image", "Plain creation", "75px viewport creation")
	for _, img := range e.images {
		scheme, err := core.NewCentered(19)
		if err != nil {
			return err
		}
		dm, err := hotspot.FromSaliency(img, 4)
		if err != nil {
			return err
		}
		candidates := dm.TopK(30, 10)
		coverage := func(click ccp.Clicker) string {
			covered := 0
			const n = 2000
			for i := 0; i < n; i++ {
				p := click(img, 0)
				for _, c := range candidates {
					if core.Accepts(scheme, scheme.Enroll(c), p) {
						covered++
						break
					}
				}
			}
			return fmt.Sprintf("%.1f%%", 100*float64(covered)/n)
		}
		tb.AddRowf(img.Name,
			coverage(ccp.HotspotClicker(rng.New(e.seed))),
			coverage(ccp.ViewportClicker(rng.New(e.seed), 75)))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("the viewport starves hotspot dictionaries — the motivation for PCCP cited in §2")
	return nil
}

// figure2 renders the paper's 1-D segmentation diagram with its worked
// example: x = 13, r = 5.5 gives segment 0 with offset d = 7.5; the
// login x' = 10 lands in the same segment.
func (e *env) figure2() error {
	fmt.Println("Figure 2: 1-D Centered Discretization (worked example: x = 13, r = 5.5)")
	ax := core.Centered1D{R: fixed.FromHalfPixels(11)} // 5.5px
	x := fixed.FromPixels(13)
	i, d := ax.Discretize(x)
	fmt.Printf("  i = floor((x-r)/2r) = %d   d = (x-r) mod 2r = %s (stored in the clear)\n", i, d)
	iLogin := ax.Locate(fixed.FromPixels(10), d)
	fmt.Printf("  login x' = 10: i' = floor((x'-d)/2r) = %d -> %s\n\n",
		iLogin, map[bool]string{true: "ACCEPTED", false: "rejected"}[iLogin == i])
	// Render the line 0..44px with segment boundaries and the points.
	var marks, line strings.Builder
	for px := 0; px <= 44; px++ {
		lo, _ := ax.Segment(ax.Locate(fixed.FromPixels(px), d), d)
		boundary := fixed.FromPixels(px)-lo < fixed.FromPixels(1)
		switch {
		case px == 13:
			line.WriteByte('X') // original
		case px == 10:
			line.WriteByte('o') // login
		case boundary:
			line.WriteByte('|')
		default:
			line.WriteByte('-')
		}
		seg := ax.Locate(fixed.FromPixels(px), d)
		if boundary {
			marks.WriteString(fmt.Sprintf("%-1d", (seg+10)%10))
		} else {
			marks.WriteByte(' ')
		}
	}
	fmt.Println("  " + line.String())
	fmt.Println("  " + marks.String() + "   (segment indices at boundaries; X original, o login)")
	fmt.Printf("  each segment is 2r = 11px; x sits exactly r = 5.5px from its segment's left edge\n")
	return nil
}

// figure34 renders the study images (Figures 3 and 4) as ASCII
// saliency heatmaps of their hotspot-field proxies.
func (e *env) figure34(which int) error {
	img := e.images[which-3]
	fmt.Printf("Figure %d: the %q image proxy (saliency heatmap; the photographs are unavailable)\n",
		which, img.Name)
	dm, err := hotspot.FromSaliency(img, 8)
	if err != nil {
		return err
	}
	const cols, rows = 56, 20
	ramp := []byte(" .:-=+*#%@")
	// Find the max for normalization.
	var max float64
	for y := 0; y < img.Size.H; y += 8 {
		for x := 0; x < img.Size.W; x += 8 {
			if v := dm.At(geom.Pt(x, y)); v > max {
				max = v
			}
		}
	}
	for ry := 0; ry < rows; ry++ {
		var line strings.Builder
		line.WriteString("  ")
		for rx := 0; rx < cols; rx++ {
			x := rx * img.Size.W / cols
			y := ry * img.Size.H / rows
			v := dm.At(geom.Pt(x, y)) / max
			idx := int(v * float64(len(ramp)-1))
			line.WriteByte(ramp[idx])
		}
		fmt.Println(line.String())
	}
	fmt.Printf("  (%d hotspots + uniform background; clicks cluster on the bright cells)\n", len(img.Hotspots))
	return nil
}

// success reports overall login acceptance per scheme configuration —
// the deployment-level usability headline.
func (e *env) success() error {
	fmt.Println("Login success rates (usability): replayed field-study logins per configuration")
	tb := report.NewTable("", "Scheme", "Grid", "Guaranteed r", "Logins accepted")
	configs := []struct {
		name string
		mk   func() (core.Scheme, error)
	}{
		{"centered", func() (core.Scheme, error) { return core.NewCentered(13) }},
		{"robust", func() (core.Scheme, error) { return core.NewRobust2D(13, e.policy, e.seed) }},
		{"robust", func() (core.Scheme, error) { return core.NewRobust2D(36, e.policy, e.seed) }},
	}
	for _, c := range configs {
		scheme, err := c.mk()
		if err != nil {
			return err
		}
		res, err := analysis.Success(e.fieldAll(), scheme, e.workers)
		if err != nil {
			return err
		}
		tb.AddRowf(res.Scheme,
			fmt.Sprintf("%dx%d", res.SidePx, res.SidePx),
			fmt.Sprintf("±%spx", fixed.Sub(scheme.GuaranteedR()).String()),
			fmt.Sprintf("%d/%d (%.1f%%)", res.Accepted, res.Logins, res.AcceptedPct()))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("robust must inflate its squares (and shrink the password space) to match centered's usability")
	return nil
}

// cohort re-runs Tables 1-2 on the participant-level cohort generator
// (191 participants, ~481 passwords, ~3339 logins, per-user skill and
// practice effects) as a robustness check on the per-password
// simulation used elsewhere.
func (e *env) cohort() error {
	var dsets []*dataset.Dataset
	participants := map[string]bool{}
	passwords, logins := 0, 0
	for i, img := range e.images {
		cfg := study.DefaultCohort(img, e.seed+50+uint64(i))
		cfg.Workers = e.workers
		d, err := study.RunCohort(cfg)
		if err != nil {
			return err
		}
		dsets = append(dsets, d)
		passwords += len(d.Passwords)
		logins += len(d.Logins)
		for j := range d.Passwords {
			participants[d.Passwords[j].User] = true
		}
	}
	fmt.Printf("Cohort robustness check: %d participants, %d passwords, %d logins (paper: 191/481/3339)\n",
		len(participants), passwords, logins)
	t1, err := analysis.Table1(dsets, e.policy, e.seed, e.workers)
	if err != nil {
		return err
	}
	t2, err := analysis.Table2(dsets, e.policy, e.seed, e.workers)
	if err != nil {
		return err
	}
	tb := report.NewTable(
		"Tables 1-2 under participant heterogeneity (skill spread + practice effects)",
		"Comparison", "Grid", "False Accept", "False Reject", "paper")
	paper1 := map[int]string{9: "3.5/21.8", 13: "1.7/21.1", 19: "0.5/10.0"}
	for _, r := range t1 {
		tb.AddRowf("equal size", fmt.Sprintf("%dx%d", r.RobustSide, r.RobustSide),
			fmt.Sprintf("%.1f%%", r.FalseAcceptPct()),
			fmt.Sprintf("%.1f%%", r.FalseRejectPct()),
			paper1[r.RobustSide])
	}
	paper2 := map[int]string{4: "32.1/0", 6: "14.1/0", 9: "4.3/0"}
	for _, r := range t2 {
		tb.AddRowf(fmt.Sprintf("equal r=%d", int(r.RobustRPx)),
			fmt.Sprintf("%dx%d", r.RobustSide, r.RobustSide),
			fmt.Sprintf("%.1f%%", r.FalseAcceptPct()),
			fmt.Sprintf("%.1f%%", r.FalseRejectPct()),
			paper2[int(r.RobustRPx)])
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("shape preserved under heterogeneity: the findings do not hinge on homogeneous users")
	return nil
}

// sensitivity sweeps image hotspot concentration and measures the
// offline crack rate at equal guaranteed r — the §2.1 observation that
// "hotspots are tied to the background images used" made quantitative:
// image choice moves both schemes together, while the scheme gap is
// structural.
func (e *env) sensitivity() error {
	fmt.Println("Sensitivity: offline crack rate vs image hotspot concentration (equal r = 6)")
	tb := report.NewTable("", "Concentration", "Hotspots", "Centered 13x13", "Robust 36x36", "Gap")
	for _, conc := range []float64{0, 0.5, 1, 1.5, 2} {
		img, err := imagegen.Parametric(fmt.Sprintf("synthetic-%.1f", conc), conc)
		if err != nil {
			return err
		}
		fieldCfg := study.FieldConfig(img, e.seed+7)
		fieldCfg.Passwords = 150
		fieldCfg.Workers = e.workers
		field, err := study.Run(fieldCfg)
		if err != nil {
			return err
		}
		labCfg := study.LabConfig(img, e.seed+107)
		labCfg.Workers = e.workers
		lab, err := study.Run(labCfg)
		if err != nil {
			return err
		}
		dict, err := attack.BuildDictionary(lab, 5)
		if err != nil {
			return err
		}
		centered, err := core.NewCentered(13)
		if err != nil {
			return err
		}
		robust, err := core.NewRobust2D(36, e.policy, e.seed)
		if err != nil {
			return err
		}
		cRes, err := attack.OfflineKnownGrids(field, dict, centered, e.workers)
		if err != nil {
			return err
		}
		rRes, err := attack.OfflineKnownGrids(field, dict, robust, e.workers)
		if err != nil {
			return err
		}
		gap := "n/a"
		if cRes.Cracked > 0 {
			gap = fmt.Sprintf("%.1fx", float64(rRes.Cracked)/float64(cRes.Cracked))
		}
		tb.AddRowf(
			fmt.Sprintf("%.1f", conc),
			fmt.Sprintf("%d", len(img.Hotspots)),
			fmt.Sprintf("%.1f%%", cRes.CrackedPct()),
			fmt.Sprintf("%.1f%%", rRes.CrackedPct()),
			gap,
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("notes: at concentration 0 Centered is uncracked while Robust still falls ~20% —")
	fmt.Println("150 arbitrary points nearly tile the image at 36x36 squares (a pure coverage attack);")
	fmt.Println("at 2.0 only 4 hotspots remain for 5 separated clicks, pushing clicks off-hotspot.")
	fmt.Println("Robust is strictly easier to crack at every concentration.")
	return nil
}

// Command passpoints manages a local graphical-password vault:
//
//	passpoints -vault v.json enroll -user alice -clicks "30,40;120,300;222,51;400,200;77,160"
//	passpoints -vault v.json verify -user alice -clicks "31,39;121,299;224,50;399,204;76,161"
//	passpoints -vault v.json list
//
// The vault file is the JSON "password file" an offline attacker would
// steal: clear grid identifiers, salts, iteration counts and digests —
// never click coordinates.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"clickpass"
	"clickpass/internal/vault"
)

func main() {
	var (
		vaultPath = flag.String("vault", "vault.json", "vault file path")
		imageW    = flag.Int("image-w", 451, "image width (pixels)")
		imageH    = flag.Int("image-h", 331, "image height (pixels)")
		side      = flag.Int("side", 13, "grid-square side (pixels)")
		scheme    = flag.String("scheme", "centered", "discretization scheme: centered or robust")
		iter      = flag.Int("iterations", 1000, "hash iterations")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	auth, err := clickpass.New(clickpass.Options{
		ImageW: *imageW, ImageH: *imageH,
		SquareSide: *side, Scheme: clickpass.Kind(*scheme),
		HashIterations: *iter,
	})
	if err != nil {
		fatal(err)
	}
	v, err := vault.Open(*vaultPath)
	if err != nil {
		fatal(err)
	}
	switch args[0] {
	case "enroll":
		runEnroll(auth, v, *vaultPath, args[1:])
	case "verify":
		runVerify(auth, v, args[1:])
	case "list":
		runList(v)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: passpoints [flags] enroll|verify|list [-user U -clicks \"x,y;x,y;...\"]")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "passpoints:", err)
	os.Exit(1)
}

func parseOp(args []string) (user string, clicks []clickpass.Point) {
	fs := flag.NewFlagSet("op", flag.ExitOnError)
	userF := fs.String("user", "", "account name")
	clicksF := fs.String("clicks", "", "click sequence \"x,y;x,y;...\"")
	_ = fs.Parse(args)
	if *userF == "" || *clicksF == "" {
		fatal(fmt.Errorf("-user and -clicks are required"))
	}
	pts, err := parseClicks(*clicksF)
	if err != nil {
		fatal(err)
	}
	return *userF, pts
}

func parseClicks(s string) ([]clickpass.Point, error) {
	var pts []clickpass.Point
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		xs, ys, ok := strings.Cut(part, ",")
		if !ok {
			return nil, fmt.Errorf("bad click %q (want x,y)", part)
		}
		x, err := strconv.Atoi(strings.TrimSpace(xs))
		if err != nil {
			return nil, fmt.Errorf("bad x in %q: %v", part, err)
		}
		y, err := strconv.Atoi(strings.TrimSpace(ys))
		if err != nil {
			return nil, fmt.Errorf("bad y in %q: %v", part, err)
		}
		pts = append(pts, clickpass.Point{X: x, Y: y})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("no clicks given")
	}
	return pts, nil
}

func runEnroll(auth *clickpass.Authenticator, v *vault.Vault, path string, args []string) {
	user, clicks := parseOp(args)
	rec, err := auth.Enroll(user, clicks)
	if err != nil {
		fatal(err)
	}
	if err := v.Put(rec); err != nil {
		fatal(err)
	}
	if err := v.SaveTo(path); err != nil {
		fatal(err)
	}
	fmt.Printf("enrolled %q (%s, tolerance ±%.1fpx); vault saved to %s\n",
		user, rec.Kind, auth.GuaranteedTolerancePx(), path)
}

func runVerify(auth *clickpass.Authenticator, v *vault.Vault, args []string) {
	user, clicks := parseOp(args)
	rec, err := v.Get(user)
	if err != nil {
		fatal(err)
	}
	ok, err := auth.Verify(rec, clicks)
	if err != nil {
		fatal(err)
	}
	if ok {
		fmt.Println("ACCEPTED")
		return
	}
	fmt.Println("REJECTED")
	os.Exit(1)
}

func runList(v *vault.Vault) {
	for _, rec := range v.All() {
		fmt.Printf("%-20s %-9s %dx%d grid, %d hash iterations\n",
			rec.User, rec.Kind, rec.SquareSidePx, rec.SquareSidePx, rec.Iterations)
	}
	if v.Len() == 0 {
		fmt.Println("(vault is empty)")
	}
}

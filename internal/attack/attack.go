// Package attack implements the paper's §5.1 security experiments
// against PassPoints password files: human-seeded dictionary attacks
// (offline, with and without known grid identifiers) and lockout-
// limited online guessing.
//
// The paper's dictionary contains every 5-click-point permutation of
// the click-points harvested from 30 lab passwords per image — about
// 2^36 entries. Enumerating 2^36 guesses is pointless when the success
// criterion factors per click: a field password is cracked by the
// dictionary if and only if the harvested points can be assigned, one
// per click, to the password's accepting grid squares (distinct points
// for distinct clicks, since a permutation cannot repeat a point).
// That is a bipartite matching question, solved exactly here, so the
// attack evaluation is exact yet costs microseconds per password.
package attack

import (
	"fmt"
	"math"
	"sort"

	"clickpass/internal/core"
	"clickpass/internal/dataset"
	"clickpass/internal/geom"
	"clickpass/internal/imagegen"
	"clickpass/internal/par"
	"clickpass/internal/replay"
)

// Dictionary is the harvested click-point pool seeding the attack.
type Dictionary struct {
	// Points are all harvested click-points in harvest order.
	Points []geom.Point
	// SourcePasswords is how many lab passwords contributed.
	SourcePasswords int
	// ClicksPerGuess is the permutation length (the system's click
	// count).
	ClicksPerGuess int
}

// BuildDictionary harvests every click-point from the lab dataset.
func BuildDictionary(lab *dataset.Dataset, clicksPerGuess int) (*Dictionary, error) {
	if err := lab.Validate(); err != nil {
		return nil, err
	}
	if clicksPerGuess <= 0 {
		return nil, fmt.Errorf("attack: clicks per guess %d must be positive", clicksPerGuess)
	}
	d := &Dictionary{ClicksPerGuess: clicksPerGuess}
	for i := range lab.Passwords {
		d.SourcePasswords++
		for _, c := range lab.Passwords[i].Clicks {
			d.Points = append(d.Points, c.Point())
		}
	}
	if len(d.Points) < clicksPerGuess {
		return nil, fmt.Errorf("attack: only %d harvested points for %d-click guesses",
			len(d.Points), clicksPerGuess)
	}
	return d, nil
}

// NewPointDictionary wraps an arbitrary candidate point pool — e.g.
// the top-K points of an automated hotspot analysis (package hotspot)
// — as an attack dictionary. This is the Dirik et al. style attack
// that needs no harvested passwords, only the image.
func NewPointDictionary(points []geom.Point, clicksPerGuess int) (*Dictionary, error) {
	if clicksPerGuess <= 0 {
		return nil, fmt.Errorf("attack: clicks per guess %d must be positive", clicksPerGuess)
	}
	if len(points) < clicksPerGuess {
		return nil, fmt.Errorf("attack: only %d points for %d-click guesses", len(points), clicksPerGuess)
	}
	return &Dictionary{
		Points:         append([]geom.Point(nil), points...),
		ClicksPerGuess: clicksPerGuess,
	}, nil
}

// Entries returns the number of permutation entries: P(n, k).
func (d *Dictionary) Entries() float64 {
	n := float64(len(d.Points))
	e := 1.0
	for i := 0; i < d.ClicksPerGuess; i++ {
		e *= n - float64(i)
	}
	return e
}

// Bits returns log2(Entries) — the paper's "36-bit dictionary" for 150
// points and 5 clicks.
func (d *Dictionary) Bits() float64 { return math.Log2(d.Entries()) }

// Result summarizes an offline attack run.
type Result struct {
	Image     string
	Scheme    string
	SidePx    int
	Passwords int
	Cracked   int
	// DictionaryBits is the modeled attack cost per account in hash
	// computations, log2.
	DictionaryBits float64
}

// CrackedPct returns the percentage of passwords cracked.
func (r Result) CrackedPct() float64 {
	if r.Passwords == 0 {
		return 0
	}
	return 100 * float64(r.Cracked) / float64(r.Passwords)
}

// OfflineKnownGrids runs the paper's first offline scenario: the
// attacker holds the password file, so each guess is discretized under
// the victim's stored grid identifiers before hashing. A password
// counts as cracked if any dictionary permutation hashes equal — i.e.
// if the harvested points admit a matching into the password's
// accepting squares. Evaluation fans out across workers goroutines
// (0 = one per CPU, 1 = serial); schemes with mutable state
// (RandomSafe) are evaluated serially regardless, so results are
// always identical to a serial run.
func OfflineKnownGrids(field *dataset.Dataset, dict *Dictionary, scheme core.Scheme, workers int) (Result, error) {
	if err := checkFieldAgainstDict(field, dict); err != nil {
		return Result{}, err
	}
	res := Result{
		Image:          field.Image,
		Scheme:         scheme.Name(),
		SidePx:         int(scheme.SquareSide().Pixels()),
		DictionaryBits: dict.Bits(),
	}
	if !core.ConcurrencySafe(scheme) {
		workers = 1
	}
	base := NewCracker(dict.Points)
	hits, err := par.MapWith(workers, len(field.Passwords), base.Fork,
		func(c *Cracker, i int) (bool, error) {
			return c.Crackable(field.Passwords[i].Points(), scheme), nil
		})
	if err != nil {
		return Result{}, err
	}
	res.Passwords = len(hits) // == len(field.Passwords)
	for _, hit := range hits {
		if hit {
			res.Cracked++
		}
	}
	return res, nil
}

// Witness returns a concrete dictionary entry that cracks the
// password, or ok=false if none exists. One-shot wrapper around
// Cracker.Witness; loops over many passwords should hold a Cracker to
// amortize the pool index and matching scratch.
func Witness(clicks []geom.Point, pool []geom.Point, scheme core.Scheme) (entry []geom.Point, ok bool) {
	return NewCracker(pool).Witness(clicks, scheme)
}

// crackable is the one-shot wrapper around Cracker.Crackable, kept for
// tests and callers outside the batched sweeps.
func crackable(clicks []geom.Point, pool []geom.Point, scheme core.Scheme) bool {
	return NewCracker(pool).Crackable(clicks, scheme)
}

// UnknownGridBits returns the extra work (in bits per dictionary
// entry) an attacker pays when the clear grid identifiers are NOT
// known and every identifier combination must be hashed (§5.1): the
// per-click identifier entropy times the click count — log2(3) per
// click for Robust versus log2(side^2) per click for Centered.
func UnknownGridBits(scheme core.Scheme, clicks int) float64 {
	return float64(clicks) * scheme.ClearBits()
}

// OnlineResult summarizes a lockout-limited online attack.
type OnlineResult struct {
	Image       string
	Scheme      string
	SidePx      int
	Lockout     int
	Accounts    int
	Compromised int
}

// CompromisedPct returns the percentage of accounts compromised.
func (r OnlineResult) CompromisedPct() float64 {
	if r.Accounts == 0 {
		return 0
	}
	return 100 * float64(r.Compromised) / float64(r.Accounts)
}

// Online models §5.1's online attack: the attacker cannot read the
// password file, so guesses go through the login interface and the
// system locks each account after lockout failed attempts. The guess
// list is the lab passwords ordered by hotspot saliency (the attacker
// has the image and ranks whole guesses by how likely their points
// are to be chosen), truncated to the lockout budget per account.
//
// Each guess's saliency score is computed once (the ranking sort used
// to re-evaluate the log-sum inside every comparison), enrollment
// tokens are precompiled once through the replay layer, and the
// independent per-account replays then fan out across workers
// goroutines (0 = one per CPU, 1 = serial). Enrollment happens
// serially during compilation, so results are byte-identical at every
// worker count even under stateful schemes (RandomSafe).
func Online(field *dataset.Dataset, lab *dataset.Dataset, img *imagegen.Image, scheme core.Scheme, lockout, workers int) (OnlineResult, error) {
	if lockout <= 0 {
		return OnlineResult{}, fmt.Errorf("attack: lockout %d must be positive", lockout)
	}
	if err := field.Validate(); err != nil {
		return OnlineResult{}, err
	}
	guesses, err := GuessOrder(lab, img)
	if err != nil {
		return OnlineResult{}, err
	}
	if lockout < len(guesses) {
		guesses = guesses[:lockout]
	}
	res := OnlineResult{
		Image:   field.Image,
		Scheme:  scheme.Name(),
		SidePx:  int(scheme.SquareSide().Pixels()),
		Lockout: lockout,
	}
	// Accounts are independent once tokens are compiled; matching is
	// pure (Scheme.Locate), so the fan-out is safe for every policy.
	set := replay.Compile(field, scheme)
	hits, err := par.Map(workers, set.Len(), func(i int) (bool, error) {
		for _, g := range guesses {
			if set.Accepts(i, g) {
				return true, nil
			}
		}
		return false, nil
	})
	if err != nil {
		return OnlineResult{}, err
	}
	res.Accounts = len(hits) // == set.Len() == len(field.Passwords)
	for _, hit := range hits {
		if hit {
			res.Compromised++
		}
	}
	return res, nil
}

// GuessOrder is the online attacker's guess stream: every lab password
// as a click sequence, ordered by descending whole-guess hotspot
// saliency (ties broken by lab order — the sort is stable, so the
// stream is deterministic). Online consumes the first `lockout`
// entries of exactly this stream; the scenario red-team harness feeds
// the same stream through the wire, which is what makes the in-process
// and through-the-wire compromise counts comparable.
func GuessOrder(lab *dataset.Dataset, img *imagegen.Image) ([][]geom.Point, error) {
	if err := lab.Validate(); err != nil {
		return nil, err
	}
	guesses := make([][]geom.Point, len(lab.Passwords))
	scores := make([]float64, len(guesses))
	order := make([]int, len(guesses))
	for i := range lab.Passwords {
		guesses[i] = lab.Passwords[i].Points()
		scores[i] = guessScore(guesses[i], img)
		order[i] = i
	}
	// Stable sort over precomputed scores: the same permutation the old
	// sort-with-rescoring produced, without the O(n log n) log-sums.
	sort.SliceStable(order, func(a, b int) bool {
		return scores[order[a]] > scores[order[b]]
	})
	ordered := make([][]geom.Point, len(order))
	for k, g := range order {
		ordered[k] = guesses[g]
	}
	return ordered, nil
}

// guessScore ranks a whole guess by the product of point saliencies
// (log-sum, to avoid underflow).
func guessScore(guess []geom.Point, img *imagegen.Image) float64 {
	score := 0.0
	for _, p := range guess {
		score += math.Log(img.Saliency(p) + 1e-300)
	}
	return score
}

// Figure7Sizes are the square sides swept by the equal-size dictionary
// attack comparison.
var Figure7Sizes = []int{9, 13, 19, 24, 36, 54}

// Figure8Rs are the guaranteed tolerances swept by the equal-r
// comparison.
var Figure8Rs = []int{4, 6, 9}

// SeriesPoint is one (x, cracked%) sample of a figure series.
type SeriesPoint struct {
	X       int // square side (Figure 7) or r (Figure 8)
	Result  Result
	Cracked float64
}

// Figure7 runs the equal-square-size offline attack for one image:
// both schemes use the same square sides, so their crack rates should
// be close (the paper's Figure 7).
func Figure7(field, lab *dataset.Dataset, policy core.RobustPolicy, seed uint64, workers int) (centered, robust []SeriesPoint, err error) {
	return sweepOffline(field, lab, policy, seed, workers, Figure7Sizes,
		func(side int) int { return side },
		func(side int) int { return side })
}

// Figure8 runs the equal-r offline attack for one image: Centered uses
// (2r+1)-pixel squares, Robust 6r-pixel squares, so Robust should be
// cracked far more often (the paper's Figure 8).
func Figure8(field, lab *dataset.Dataset, policy core.RobustPolicy, seed uint64, workers int) (centered, robust []SeriesPoint, err error) {
	return sweepOffline(field, lab, policy, seed, workers, Figure8Rs,
		func(r int) int { return 2*r + 1 },
		func(r int) int { return 6 * r })
}

// sweepOffline evaluates the offline attack over every (sweep point,
// scheme) cell of a figure. All cell × password pairs are flattened
// into one task list, so the fan-out keeps every worker busy even when
// cells have very different costs (large squares admit many more
// candidate points than small ones). The dictionary's spatial index is
// built once and shared read-only; each worker forks its own scratch.
func sweepOffline(field, lab *dataset.Dataset, policy core.RobustPolicy, seed uint64, workers int,
	xs []int, centeredSide, robustSide func(x int) int) (centered, robust []SeriesPoint, err error) {
	dict, err := BuildDictionary(lab, clicksOf(field))
	if err != nil {
		return nil, nil, err
	}
	if err := checkFieldAgainstDict(field, dict); err != nil {
		return nil, nil, err
	}
	// Schemes are built serially so RandomSafe's RNG consumption stays
	// fixed; cells alternate centered/robust per sweep point.
	schemes := make([]core.Scheme, 0, 2*len(xs))
	safe := true
	for _, x := range xs {
		c, err := core.NewCentered(centeredSide(x))
		if err != nil {
			return nil, nil, err
		}
		rb, err := core.NewRobust2D(robustSide(x), policy, seed)
		if err != nil {
			return nil, nil, err
		}
		schemes = append(schemes, c, rb)
		safe = safe && core.ConcurrencySafe(rb)
	}
	if !safe {
		workers = 1
	}
	nPw := len(field.Passwords)
	pts := make([][]geom.Point, nPw)
	for i := range pts {
		pts[i] = field.Passwords[i].Points()
	}
	base := NewCracker(dict.Points)
	hits, err := par.MapWith(workers, len(schemes)*nPw, base.Fork,
		func(c *Cracker, k int) (bool, error) {
			return c.Crackable(pts[k%nPw], schemes[k/nPw]), nil
		})
	if err != nil {
		return nil, nil, err
	}
	for ci, scheme := range schemes {
		res := Result{
			Image:          field.Image,
			Scheme:         scheme.Name(),
			SidePx:         int(scheme.SquareSide().Pixels()),
			Passwords:      nPw,
			DictionaryBits: dict.Bits(),
		}
		for _, hit := range hits[ci*nPw : (ci+1)*nPw] {
			if hit {
				res.Cracked++
			}
		}
		sp := SeriesPoint{X: xs[ci/2], Result: res, Cracked: res.CrackedPct()}
		if ci%2 == 0 {
			centered = append(centered, sp)
		} else {
			robust = append(robust, sp)
		}
	}
	return centered, robust, nil
}

func clicksOf(d *dataset.Dataset) int {
	if len(d.Passwords) == 0 {
		return 0
	}
	return len(d.Passwords[0].Clicks)
}

// checkFieldAgainstDict validates the victim dataset and confirms
// every password's click count matches the dictionary's guess length.
func checkFieldAgainstDict(field *dataset.Dataset, dict *Dictionary) error {
	if err := field.Validate(); err != nil {
		return err
	}
	for i := range field.Passwords {
		if n := len(field.Passwords[i].Clicks); n != dict.ClicksPerGuess {
			return fmt.Errorf("attack: password %d has %d clicks, dictionary guesses %d",
				field.Passwords[i].ID, n, dict.ClicksPerGuess)
		}
	}
	return nil
}

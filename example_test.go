package clickpass_test

import (
	"fmt"
	"log"

	"clickpass"
)

// Enrolling and verifying a 5-click graphical password with Centered
// Discretization: re-entries within 6 pixels of every original click
// are accepted, anything farther is rejected — exactly.
func Example() {
	auth, err := clickpass.New(clickpass.Options{
		ImageW: 451, ImageH: 331,
		Clicks:         5,
		SquareSide:     13, // ±6 px centered tolerance
		HashIterations: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	password := []clickpass.Point{
		{X: 52, Y: 70}, {X: 246, Y: 74}, {X: 74, Y: 168}, {X: 330, Y: 268}, {X: 180, Y: 90},
	}
	rec, err := auth.Enroll("alice", password)
	if err != nil {
		log.Fatal(err)
	}

	near := make([]clickpass.Point, len(password))
	far := make([]clickpass.Point, len(password))
	for i, p := range password {
		near[i] = clickpass.Point{X: p.X + 6, Y: p.Y - 6}
		far[i] = clickpass.Point{X: p.X + 7, Y: p.Y}
	}
	okNear, _ := auth.Verify(rec, near)
	okFar, _ := auth.Verify(rec, far)
	fmt.Println("6px off:", okNear)
	fmt.Println("7px off:", okFar)
	// Output:
	// 6px off: true
	// 7px off: false
}

// Comparing the two schemes at equal guaranteed tolerance: Centered
// needs a 13x13 square where Robust needs 36x36, which costs Robust
// ~14 bits of password space on the paper's study image.
func ExampleAuthenticator_PasswordSpaceBits() {
	centered, err := clickpass.New(clickpass.Options{
		ImageW: 451, ImageH: 331, SquareSide: 13, Scheme: clickpass.Centered,
	})
	if err != nil {
		log.Fatal(err)
	}
	robust, err := clickpass.New(clickpass.Options{
		ImageW: 451, ImageH: 331, SquareSide: 36, Scheme: clickpass.Robust,
	})
	if err != nil {
		log.Fatal(err)
	}
	cb, _ := centered.PasswordSpaceBits()
	rb, _ := robust.PasswordSpaceBits()
	fmt.Printf("centered 13x13: %.1f bits\n", cb)
	fmt.Printf("robust 36x36:   %.1f bits\n", rb)
	fmt.Printf("same tolerance: ±%.0fpx vs ±%.0fpx guaranteed\n",
		centered.GuaranteedTolerancePx(), robust.GuaranteedTolerancePx())
	// Output:
	// centered 13x13: 49.1 bits
	// robust 36x36:   35.1 bits
	// same tolerance: ±6px vs ±6px guaranteed
}
